// Package dlr implements DLR — the paper's distributed public key
// encryption scheme semantically secure against continual memory leakage
// (Construction 5.3) — including the two secret-memory layouts of the
// §5.2 remarks and the ciphertext-reuse optimization.
//
// Roles (Type-3 pairing layout):
//
//	g, g1 = g^α, A = g^t          ∈ G1
//	g2, aᵢ, Φ = g2^α·Π aᵢ^sᵢ      ∈ G2
//	messages, B = m·e(g1,g2)^t    ∈ GT
//
// Key generation (run by a trusted dealer, paper footnote 5) outputs
//
//	pk  = e(g1, g2)
//	sk1 = (a1,…,aℓ, Φ)  → P1     (Π_ss ciphertext encrypting msk = g2^α)
//	sk2 = (s1,…,sℓ)     → P2     (Π_ss key)
//
// Encryption of m ∈ GT is (g^t, m·pk^t): two exponentiations and a
// two-element ciphertext, as §1.2.1 advertises. Decryption and refresh
// are 2-party protocols between P1 and P2 (see protocol.go); P2 only
// ever samples scalars and computes products of received elements raised
// to those scalars — the "simplicity of one of the two devices" property.
//
// Hot loops ride the bn254 fast paths: P1's ℓ+1 ciphertext transports
// share one flattened PairBatch (hpske.TransportMany), and P2's
// Π dᵢ^sᵢ / Π f'ᵢ^s'ᵢ·fᵢ^(−sᵢ) combinations are coordinate-wise
// multi-exponentiations (hpske.LinComb over group.ProdExp). Op counts
// reported through opcount.Counter keep the naive shape — n
// exponentiations plus n multiplications per combination, one pairing
// per transported coordinate — so the E6 asymmetry table stays
// comparable across implementations. Like all bn254 arithmetic, none
// of this is constant-time; the leakage model tolerates it (see the
// bn254 package docs).
package dlr

import (
	"fmt"
	"io"
	"math/big"
	"sync"
	"sync/atomic"

	"repro/internal/bn254"
	"repro/internal/cache"
	"repro/internal/group"
	"repro/internal/hpske"
	"repro/internal/opcount"
	"repro/internal/params"
	"repro/internal/pss"
	"repro/internal/scalar"
)

// PublicKey is pk = (p, g, e, e(g1,g2)); the group description is the
// fixed BN254 instance, so only e(g1,g2) is carried.
type PublicKey struct {
	// E is e(g1, g2) = e(g, g2)^α.
	E *bn254.GT
	// Params are the derived scheme parameters (κ, ℓ, λ, n).
	Params params.Params
}

// Bytes returns the canonical public-key encoding.
func (pk *PublicKey) Bytes() []byte { return pk.E.Bytes() }

// Ciphertext is an encryption (A, B) = (g^t, m·e(g1,g2)^t) of m ∈ GT.
type Ciphertext struct {
	A *bn254.G1
	B *bn254.GT
}

// Bytes returns the canonical ciphertext encoding A ‖ B.
func (c *Ciphertext) Bytes() []byte {
	out := make([]byte, 0, bn254.G1Bytes+bn254.GTBytes)
	out = append(out, c.A.Bytes()...)
	out = append(out, c.B.Bytes()...)
	return out
}

// BytesCompressed returns the compact wire encoding A(compressed) ‖ B:
// the G1 component shrinks to 33 bytes; B (an Fp12 element) has no
// cheap compressed form and stays raw. This is the encoding the
// decrypt-server client sends; CiphertextFromBytes accepts both.
func (c *Ciphertext) BytesCompressed() []byte {
	out := make([]byte, 0, bn254.G1BytesCompressed+bn254.GTBytes)
	out = c.A.AppendCompressed(out)
	out = append(out, c.B.Bytes()...)
	return out
}

// CiphertextFromBytes decodes a ciphertext in either the canonical
// (A raw) or the compact (A compressed) encoding, distinguished by
// length.
func CiphertextFromBytes(b []byte) (*Ciphertext, error) {
	var (
		a   *bn254.G1
		err error
		off int
	)
	switch len(b) {
	case bn254.G1Bytes + bn254.GTBytes:
		a, err = new(bn254.G1).SetBytes(b[:bn254.G1Bytes])
		off = bn254.G1Bytes
	case bn254.G1BytesCompressed + bn254.GTBytes:
		a, err = new(bn254.G1).SetBytesCompressed(b[:bn254.G1BytesCompressed])
		off = bn254.G1BytesCompressed
	default:
		return nil, fmt.Errorf("dlr: ciphertext must be %d or %d bytes, got %d",
			bn254.G1Bytes+bn254.GTBytes, bn254.G1BytesCompressed+bn254.GTBytes, len(b))
	}
	if err != nil {
		return nil, fmt.Errorf("dlr: decoding A: %w", err)
	}
	bt, err := new(bn254.GT).SetBytes(b[off:])
	if err != nil {
		return nil, fmt.Errorf("dlr: decoding B: %w", err)
	}
	return &Ciphertext{A: a, B: bt}, nil
}

// P1 is the main device's state. Its secret memory depends on the mode:
// in ModeBasic it holds sk1 in the clear plus the period key skcomm; in
// ModeOptimalRate it holds only skcomm — sk1 lives Π_comm-encrypted in
// public memory (encSK1/encPhi) and is never decrypted.
type P1 struct {
	pk   *PublicKey
	prm  params.Params
	mode params.Mode
	ctr  *opcount.Counter

	ssG2 *hpske.Scheme[*bn254.G2] // Π_comm over G2 (key length κ)
	ssGT *hpske.Scheme[*bn254.GT] // Π_comm over GT (key length κ)
	g2   group.G2
	gt   group.GT

	// sk1 is the plaintext share (ModeBasic only; nil otherwise).
	//dlr:secret
	sk1 *pss.Share1

	// skcomm is the current period's Π_comm key.
	//dlr:secret
	skcomm hpske.Key

	// encSK1[i] = Enc'_{skcomm}(aᵢ) — the fᵢ of the protocols — and
	// encPhi = Enc'_{skcomm}(Φ). Public memory (they transit the public
	// channel anyway).
	encSK1 []*hpske.Ciphertext[*bn254.G2]
	encPhi *hpske.Ciphertext[*bn254.G2]

	// transTabs caches the precomputed Miller-loop line tables for the
	// §5.2 transports of encSK1/encPhi (public data derived from public
	// ciphertexts). Built lazily on the first RunDec of a period and
	// dropped whenever the encrypted share changes.
	transTabs []*hpske.TransportTable

	// batchTabs holds the current epoch's batch decryption session: the
	// κ+1 pairing tables derived from P2's combination u. Once set, a
	// RunDecBatch serves entirely locally — zero round trips — until
	// the next rotation drops the session. Atomic because the bench
	// pipeline (and any other caller honoring the read-only contract)
	// drives one P1 from several worker goroutines; concurrent cold
	// batches may race to install, which is benign — the tables are a
	// deterministic function of (u, skcomm), so either install is valid.
	//dlr:atomic
	batchTabs atomic.Pointer[batchSession]

	period uint64

	// epoch counts share-state rotations: it is bumped by every
	// operation that replaces encSK1/encPhi/skcomm (RunRef, BeginPeriod,
	// rebuildEncryptedShare, CommitRefresh). Unlike period — which only
	// refresh protocols advance — epoch changes on EVERY rotation, which
	// is what the table cache keys on: a post-rotation lookup can never
	// address a pre-rotation entry. See internal/cache for why this
	// matters for leakage soundness. Atomic because observers (the
	// server's TenantEpoch gauge, StageRefresh running concurrently with
	// serving) read it while a rotation on the owning loop bumps it.
	//dlr:atomic
	epoch atomic.Uint64

	// tableCache, when attached, shares precomputed pairing tables
	// across requests (and across P1 instances of different tenants)
	// keyed by (tenant, epoch, kind). Nil means uncached — all table
	// builds stay per-call/per-instance as before.
	tableCache *cache.Cache
	tenant     string

	// legacyWire pins P1's protocol frames to the uncompressed v1 list
	// codec, for devices that predate point compression. See
	// SetLegacyWire.
	legacyWire bool
}

// SetLegacyWire selects the list codec this P1 emits on the device
// channel: false (default) sends point-compressed G2 lists (hpske codec
// v2, roughly half the bytes); true pins the legacy uncompressed
// format for a P2 that predates the compressed codec. P2's handlers
// always answer in the codec the request arrived in, so no flag exists
// on that side.
func (p *P1) SetLegacyWire(legacy bool) { p.legacyWire = legacy }

// encodeG2List serializes a G2 ciphertext list in the codec this P1
// emits (see SetLegacyWire).
func (p *P1) encodeG2List(cts []*hpske.Ciphertext[*bn254.G2]) ([]byte, error) {
	if p.legacyWire {
		return hpske.EncodeListLegacy(p.ssG2, cts)
	}
	return hpske.EncodeList(p.ssG2, cts)
}

// P2 is the auxiliary device's state: just the Π_ss key sk2 = (s1,…,sℓ).
type P2 struct {
	prm params.Params
	ctr *opcount.Counter

	ssG2 *hpske.Scheme[*bn254.G2]
	ssGT *hpske.Scheme[*bn254.GT]
	g2   group.G2
	gt   group.GT

	// mu orders refresh (which rewrites sk2) against decryption requests
	// when one P2 serves several channels concurrently — the dlrdevice
	// daemon's per-connection goroutines. Decryptions share a read lock;
	// a refresh takes the write lock.
	mu sync.RWMutex

	//dlr:secret
	sk2 hpske.Key

	period uint64
}

// Option configures key generation.
type Option func(*genConfig)

type genConfig struct {
	mode   params.Mode
	ctrP1  *opcount.Counter
	ctrP2  *opcount.Counter
	ctrGen *opcount.Counter
}

// WithMode selects P1's secret-memory layout (default ModeOptimalRate).
func WithMode(m params.Mode) Option { return func(c *genConfig) { c.mode = m } }

// WithCounters attaches per-device operation counters (either may be nil).
func WithCounters(p1, p2 *opcount.Counter) Option {
	return func(c *genConfig) {
		c.ctrP1 = p1
		c.ctrP2 = p2
	}
}

// WithGenCounter attaches a counter for the dealer's own operations.
func WithGenCounter(ctr *opcount.Counter) Option {
	return func(c *genConfig) { c.ctrGen = ctr }
}

// Gen runs key generation (the trusted dealer of footnote 5): it samples
// α, g2, computes pk = e(g^α, g2), shares msk = g2^α via Π_ss, hands the
// ciphertext share to P1 and the key share to P2, and installs the first
// period's Π_comm key.
func Gen(rng io.Reader, prm params.Params, opts ...Option) (*PublicKey, *P1, *P2, error) {
	cfg := genConfig{mode: params.ModeOptimalRate}
	for _, o := range opts {
		o(&cfg)
	}
	genG2 := group.G2{Ctr: cfg.ctrGen}

	alpha, err := scalar.Rand(rng)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dlr: sampling α: %w", err)
	}
	g1 := new(bn254.G1).ScalarBaseMult(alpha)
	cfg.ctrGen.Add(opcount.G1Exp, 1)

	// g2 is sampled obliviously (nobody knows its discrete log).
	g2pt, err := genG2.Rand(rng)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dlr: sampling g2: %w", err)
	}
	e := group.Pair(cfg.ctrGen, g1, g2pt)
	msk := genG2.Exp(g2pt, alpha)

	// Share msk between the devices.
	ss, err := pss.New(genG2, prm.Ell)
	if err != nil {
		return nil, nil, nil, err
	}
	sh1, sh2, err := ss.Share(rng, msk)
	if err != nil {
		return nil, nil, nil, err
	}

	pk := &PublicKey{E: e, Params: prm}
	p1, err := newP1(rng, pk, prm, cfg.mode, cfg.ctrP1, sh1)
	if err != nil {
		return nil, nil, nil, err
	}
	p2, err := newP2(pk, prm, cfg.ctrP2, sh2)
	if err != nil {
		return nil, nil, nil, err
	}
	return pk, p1, p2, nil
}

func newP1(rng io.Reader, pk *PublicKey, prm params.Params, mode params.Mode, ctr *opcount.Counter, sh1 *pss.Share1) (*P1, error) {
	g2 := group.G2{Ctr: ctr}
	gt := group.GT{Ctr: ctr}
	ssG2, err := hpske.New[*bn254.G2](g2, prm.Kappa)
	if err != nil {
		return nil, err
	}
	ssGT, err := hpske.New[*bn254.GT](gt, prm.Kappa)
	if err != nil {
		return nil, err
	}
	p1 := &P1{
		pk: pk, prm: prm, mode: mode, ctr: ctr,
		ssG2: ssG2, ssGT: ssGT, g2: g2, gt: gt,
	}
	switch mode {
	case params.ModeBasic:
		p1.sk1 = sh1.Clone()
		if err := p1.rebuildEncryptedShare(rng); err != nil {
			return nil, err
		}
	case params.ModeOptimalRate:
		// Encrypt the share coordinate-by-coordinate and drop the
		// plaintext: the aᵢ become the payloads of the fᵢ.
		key, err := ssG2.GenKey(rng)
		if err != nil {
			return nil, err
		}
		p1.skcomm = key
		p1.encSK1 = make([]*hpske.Ciphertext[*bn254.G2], prm.Ell)
		for i, ai := range sh1.Coins {
			ct, err := ssG2.Encrypt(rng, key, ai)
			if err != nil {
				return nil, err
			}
			p1.encSK1[i] = ct
		}
		encPhi, err := ssG2.Encrypt(rng, key, sh1.Payload)
		if err != nil {
			return nil, err
		}
		p1.encPhi = encPhi
	default:
		return nil, fmt.Errorf("dlr: unknown mode %v", mode)
	}
	return p1, nil
}

func newP2(pk *PublicKey, prm params.Params, ctr *opcount.Counter, sh2 pss.Share2) (*P2, error) {
	g2 := group.G2{Ctr: ctr}
	gt := group.GT{Ctr: ctr}
	ssG2, err := hpske.New[*bn254.G2](g2, prm.Kappa)
	if err != nil {
		return nil, err
	}
	ssGT, err := hpske.New[*bn254.GT](gt, prm.Kappa)
	if err != nil {
		return nil, err
	}
	return &P2{
		prm: prm, ctr: ctr,
		ssG2: ssG2, ssGT: ssGT, g2: g2, gt: gt,
		sk2: hpske.Key(sh2),
	}, nil
}

// rebuildEncryptedShare (ModeBasic) samples a fresh skcomm and
// re-encrypts the plaintext share under it — the paper's "P1 samples a
// key skcomm ← Gen'" at the start of each period.
//
//dlr:zeroize skcomm
func (p *P1) rebuildEncryptedShare(rng io.Reader) error {
	key, err := p.ssG2.GenKey(rng)
	if err != nil {
		return err
	}
	// Wipe the outgoing period key before dropping the reference (nil on
	// the first call from newP1).
	p.skcomm.Zeroize()
	p.skcomm = key
	p.encSK1 = make([]*hpske.Ciphertext[*bn254.G2], p.prm.Ell)
	for i, ai := range p.sk1.Coins {
		ct, err := p.ssG2.Encrypt(rng, key, ai)
		if err != nil {
			return err
		}
		p.encSK1[i] = ct
	}
	encPhi, err := p.ssG2.Encrypt(rng, key, p.sk1.Payload)
	if err != nil {
		return err
	}
	p.encPhi = encPhi
	p.noteRotation()
	return nil
}

// noteRotation records that the share state (encSK1/encPhi/skcomm) has
// been replaced: every precomputed table derived from the old state is
// now dead. The epoch bump is what guarantees correctness — cache keys
// embed it, so stale entries become unaddressable — and the eager
// invalidation just reclaims their memory without waiting for LRU
// pressure.
func (p *P1) noteRotation() {
	p.epoch.Add(1)
	p.transTabs = nil
	p.batchTabs.Store(nil)
	if p.tableCache != nil {
		p.tableCache.InvalidateTenant(p.tenant)
	}
}

// AttachCache shares the precomputation cache c with this P1 under the
// given tenant label. Tables built from the current share state are
// published under (tenant, epoch, kind) keys and reused until the next
// rotation bumps the epoch. Attach only to live instances: the
// attachment (and the epoch counter) is deliberately not serialized by
// Marshal, so a P1 restored from bytes starts uncached and cannot
// collide with entries a previous incarnation published.
func (p *P1) AttachCache(c *cache.Cache, tenant string) {
	p.tableCache = c
	p.tenant = tenant
}

// Epoch returns the share-rotation epoch (see the field doc).
func (p *P1) Epoch() uint64 { return p.epoch.Load() }

// transportTables returns the cached line tables for the current
// encrypted share, building them (one per ciphertext, fanned out across
// CPUs) on first use. The tables are pure public-key material: they are
// a deterministic function of the public encSK1/encPhi ciphertexts, so
// caching them adds nothing to P1's secret memory or leakage surface.
// With a cache attached, the build is also published under
// (tenant, epoch, "dlr.transport") so other holders of the cache — or
// this P1 after its in-struct pointer was dropped — skip the κ+1
// Miller precomputations per ciphertext.
func (p *P1) transportTables() []*hpske.TransportTable {
	if p.transTabs != nil {
		return p.transTabs
	}
	key := cache.Key{Tenant: p.tenant, Epoch: p.epoch.Load(), Kind: "dlr.transport"}
	if p.tableCache != nil {
		if v, ok := p.tableCache.Get(key); ok {
			p.transTabs = v.([]*hpske.TransportTable)
			return p.transTabs
		}
	}
	srcs := make([]*hpske.Ciphertext[*bn254.G2], 0, p.prm.Ell+1)
	srcs = append(srcs, p.encSK1...)
	srcs = append(srcs, p.encPhi)
	// One flattened fan-out over all (ℓ+1)(κ+1) line tables instead of
	// a fork/join barrier per ciphertext.
	tabs := hpske.PrecomputeTransportMany(srcs)
	p.transTabs = tabs
	if p.tableCache != nil {
		p.tableCache.Put(key, tabs)
	}
	return p.transTabs
}

// BeginPeriod starts a new time period: P1 rotates its Π_comm key. In
// ModeBasic the encrypted share is regenerated from the plaintext share;
// in ModeOptimalRate every public ciphertext is re-encrypted from the
// old key to the new one without decryption.
//
//dlr:zeroize skcomm
func (p *P1) BeginPeriod(rng io.Reader) error {
	p.period++
	if p.mode == params.ModeBasic {
		return p.rebuildEncryptedShare(rng)
	}
	newKey, err := p.ssG2.GenKey(rng)
	if err != nil {
		return err
	}
	for i, ct := range p.encSK1 {
		re, err := p.ssG2.ReEncrypt(rng, p.skcomm, newKey, ct)
		if err != nil {
			return err
		}
		p.encSK1[i] = re
	}
	re, err := p.ssG2.ReEncrypt(rng, p.skcomm, newKey, p.encPhi)
	if err != nil {
		return err
	}
	p.encPhi = re
	// Every ciphertext now lives under newKey; wipe the outgoing period
	// key before dropping the reference.
	p.skcomm.Zeroize()
	p.skcomm = newKey
	p.noteRotation()
	return nil
}

// Encrypt encrypts m ∈ GT: (g^t, m·pk^t) for uniform t.
func Encrypt(rng io.Reader, pk *PublicKey, m *bn254.GT, ctr *opcount.Counter) (*Ciphertext, error) {
	t, err := scalar.Rand(rng)
	if err != nil {
		return nil, fmt.Errorf("dlr: sampling t: %w", err)
	}
	a := new(bn254.G1).ScalarBaseMult(t)
	ctr.Add(opcount.G1Exp, 1)
	b := new(bn254.GT).Exp(pk.E, t)
	ctr.Add(opcount.GTExp, 1)
	b.Mul(b, m)
	ctr.Add(opcount.GTMul, 1)
	return &Ciphertext{A: a, B: b}, nil
}

// Rerandomize returns an independently distributed encryption of the
// same plaintext: (A·g^{t'}, B·pk^{t'}). Secure storage (§4.4) uses this
// to refresh stored ciphertexts each period alongside the key-share
// refresh.
func (c *Ciphertext) Rerandomize(rng io.Reader, pk *PublicKey, ctr *opcount.Counter) (*Ciphertext, error) {
	t, err := scalar.Rand(rng)
	if err != nil {
		return nil, err
	}
	a := new(bn254.G1).ScalarBaseMult(t)
	ctr.Add(opcount.G1Exp, 1)
	a.Add(a, c.A)
	ctr.Add(opcount.G1Mul, 1)
	b := new(bn254.GT).Exp(pk.E, t)
	ctr.Add(opcount.GTExp, 1)
	b.Mul(b, c.B)
	ctr.Add(opcount.GTMul, 1)
	return &Ciphertext{A: a, B: b}, nil
}

// RandMessage samples a uniformly random plaintext in GT (with known
// exponent relative to pk — fine for message material).
func RandMessage(rng io.Reader, pk *PublicKey) (*bn254.GT, error) {
	u, err := scalar.Rand(rng)
	if err != nil {
		return nil, err
	}
	return new(bn254.GT).Exp(pk.E, u), nil
}

// Mode returns P1's secret-memory layout.
func (p *P1) Mode() params.Mode { return p.mode }

// Period returns the current period number of P1.
func (p *P1) Period() uint64 { return p.period }

// Params returns the scheme parameters.
func (p *P1) Params() params.Params { return p.prm }

// Public returns the public key.
func (p *P1) Public() *PublicKey { return p.pk }

// SecretBytes serializes P1's secret memory: in ModeBasic the plaintext
// share plus skcomm; in ModeOptimalRate only skcomm. This is the input
// handed to the adversary's leakage functions h_1^t.
func (p *P1) SecretBytes() []byte {
	var out []byte
	if p.mode == params.ModeBasic {
		for _, a := range p.sk1.Coins {
			out = append(out, a.Bytes()...)
		}
		out = append(out, p.sk1.Payload.Bytes()...)
	}
	out = append(out, p.skcomm.Bytes()...)
	return out
}

// PublicShareBytes serializes P1's public memory beyond the transcript:
// the encrypted share (ModeOptimalRate) — empty in ModeBasic where the
// encrypted share is transient.
func (p *P1) PublicShareBytes() []byte {
	if p.mode != params.ModeOptimalRate {
		return nil
	}
	var out []byte
	for _, ct := range p.encSK1 {
		b, err := p.ssG2.Bytes(ct)
		if err != nil {
			continue
		}
		out = append(out, b...)
	}
	if b, err := p.ssG2.Bytes(p.encPhi); err == nil {
		out = append(out, b...)
	}
	return out
}

// SecretBytes serializes P2's secret memory: sk2 = (s1,…,sℓ).
func (p *P2) SecretBytes() []byte { return p.sk2.Bytes() }

// Period returns the current period number of P2.
func (p *P2) Period() uint64 { return p.period }

// shareSK2 returns a copy of P2's share (test/benchmark support — a
// deployment never extracts this).
func (p *P2) shareSK2() []*big.Int { return scalar.CopyVector(p.sk2) }

// sharePlain reconstructs P1's plaintext share (test support): in
// ModeBasic it is held directly; in ModeOptimalRate it requires skcomm
// to decrypt the public ciphertexts.
func (p *P1) sharePlain() (*pss.Share1, error) {
	if p.mode == params.ModeBasic {
		return p.sk1.Clone(), nil
	}
	coins := make([]*bn254.G2, len(p.encSK1))
	for i, ct := range p.encSK1 {
		a, err := p.ssG2.Decrypt(p.skcomm, ct)
		if err != nil {
			return nil, err
		}
		coins[i] = a
	}
	phi, err := p.ssG2.Decrypt(p.skcomm, p.encPhi)
	if err != nil {
		return nil, err
	}
	return &pss.Share1{Coins: coins, Payload: phi}, nil
}
