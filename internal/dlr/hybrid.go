package dlr

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"fmt"
	"io"

	"repro/internal/bn254"
	"repro/internal/opcount"
	"repro/internal/wire"
)

// HybridCiphertext is a KEM/DEM encryption of an arbitrary byte string:
// the DLR ciphertext encapsulates a random GT element whose hash keys
// AES-256-GCM over the payload. This is how applications encrypt real
// data with a scheme whose native message space is GT.
type HybridCiphertext struct {
	// KEM is the DLR encryption of the GT session element.
	KEM *Ciphertext
	// Nonce is the GCM nonce.
	Nonce []byte
	// Sealed is the GCM ciphertext+tag of the payload.
	Sealed []byte
}

// Bytes returns the canonical encoding.
func (h *HybridCiphertext) Bytes() []byte {
	var b wire.Builder
	b.AppendBytes(h.KEM.Bytes())
	b.AppendBytes(h.Nonce)
	b.AppendBytes(h.Sealed)
	return b.Bytes()
}

// HybridCiphertextFromBytes decodes a hybrid ciphertext.
func HybridCiphertextFromBytes(raw []byte) (*HybridCiphertext, error) {
	p := wire.NewParser(raw)
	kemRaw, err := p.Bytes()
	if err != nil {
		return nil, err
	}
	kem, err := CiphertextFromBytes(kemRaw)
	if err != nil {
		return nil, err
	}
	nonce, err := p.Bytes()
	if err != nil {
		return nil, err
	}
	sealed, err := p.Bytes()
	if err != nil {
		return nil, err
	}
	if !p.Done() {
		return nil, fmt.Errorf("dlr: trailing bytes in hybrid ciphertext")
	}
	return &HybridCiphertext{
		KEM:    kem,
		Nonce:  append([]byte(nil), nonce...),
		Sealed: append([]byte(nil), sealed...),
	}, nil
}

// sessionAEAD derives an AES-256-GCM instance from a GT session element.
func sessionAEAD(k *bn254.GT) (cipher.AEAD, error) {
	key := sha256.Sum256(k.Bytes())
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("dlr: deriving DEM key: %w", err)
	}
	return cipher.NewGCM(block)
}

// EncryptBytes hybrid-encrypts msg under pk.
func EncryptBytes(rng io.Reader, pk *PublicKey, msg []byte, ctr *opcount.Counter) (*HybridCiphertext, error) {
	session, err := RandMessage(rng, pk)
	if err != nil {
		return nil, err
	}
	kem, err := Encrypt(rng, pk, session, ctr)
	if err != nil {
		return nil, err
	}
	aead, err := sessionAEAD(session)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rng, nonce); err != nil {
		return nil, fmt.Errorf("dlr: sampling nonce: %w", err)
	}
	sealed := aead.Seal(nil, nonce, msg, nil)
	return &HybridCiphertext{KEM: kem, Nonce: nonce, Sealed: sealed}, nil
}

// DecryptBytes recovers the payload after the 2-party protocol has
// produced the GT session element for h.KEM.
func DecryptBytes(h *HybridCiphertext, session *bn254.GT) ([]byte, error) {
	aead, err := sessionAEAD(session)
	if err != nil {
		return nil, err
	}
	msg, err := aead.Open(nil, h.Nonce, h.Sealed, nil)
	if err != nil {
		return nil, fmt.Errorf("dlr: AEAD open failed (wrong session element or tampered ciphertext): %w", err)
	}
	return msg, nil
}

// DecryptBytesProtocol runs the in-process 2-party decryption of the KEM
// and opens the DEM.
func DecryptBytesProtocol(rng io.Reader, p1 *P1, p2 *P2, h *HybridCiphertext) ([]byte, error) {
	session, _, err := Decrypt(rng, p1, p2, h.KEM)
	if err != nil {
		return nil, err
	}
	return DecryptBytes(h, session)
}
