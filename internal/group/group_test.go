package group

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/bn254"
	"repro/internal/opcount"
	"repro/internal/scalar"
)

// groupLaws exercises the Group contract generically.
func groupLaws[E any](t *testing.T, g Group[E]) {
	t.Helper()
	a, err := g.Rand(rand.Reader)
	if err != nil {
		t.Fatalf("%s: Rand: %v", g.Name(), err)
	}
	b, err := g.Rand(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(g.Mul(a, g.Identity()), a) {
		t.Fatalf("%s: a·1 ≠ a", g.Name())
	}
	if !g.Equal(g.Mul(a, g.Inv(a)), g.Identity()) {
		t.Fatalf("%s: a·a⁻¹ ≠ 1", g.Name())
	}
	if !g.Equal(g.Mul(a, b), g.Mul(b, a)) {
		t.Fatalf("%s: not commutative", g.Name())
	}
	// (a^k1)^k2 = a^(k1·k2).
	k1, _ := scalar.Rand(nil)
	k2, _ := scalar.Rand(nil)
	lhs := g.Exp(g.Exp(a, k1), k2)
	rhs := g.Exp(a, scalar.Mul(k1, k2))
	if !g.Equal(lhs, rhs) {
		t.Fatalf("%s: exp composition broken", g.Name())
	}
	// Order: a^r = 1.
	if !g.Equal(g.Exp(a, scalar.Order()), g.Identity()) {
		t.Fatalf("%s: a^r ≠ 1", g.Name())
	}
	// Serialization round trip.
	enc := g.Bytes(a)
	if len(enc) != g.ElementLen() {
		t.Fatalf("%s: encoding length %d ≠ ElementLen %d", g.Name(), len(enc), g.ElementLen())
	}
	back, err := g.FromBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back, a) {
		t.Fatalf("%s: bytes round trip failed", g.Name())
	}
}

func TestG1Laws(t *testing.T) { groupLaws[*bn254.G1](t, G1{}) }
func TestG2Laws(t *testing.T) { groupLaws[*bn254.G2](t, G2{}) }
func TestGTLaws(t *testing.T) { groupLaws[*bn254.GT](t, GT{}) }

func TestOpCounting(t *testing.T) {
	ctr := opcount.New()
	g := G2{Ctr: ctr}
	a, err := g.Rand(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	g.Exp(a, big.NewInt(5))
	g.Mul(a, a)
	if got := ctr.Get(opcount.G2Exp); got != 1 {
		t.Fatalf("counted %d G2 exps, want 1", got)
	}
	if got := ctr.Get(opcount.G2Mul); got != 1 {
		t.Fatalf("counted %d G2 muls, want 1", got)
	}
	if got := ctr.Get(opcount.HashToG); got != 1 {
		t.Fatalf("counted %d hashes, want 1", got)
	}
}

func TestNilCounterSafe(t *testing.T) {
	g := GT{}
	a, err := g.Rand(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	g.Exp(a, big.NewInt(3)) // must not panic with nil counter
}

func TestProdExp(t *testing.T) {
	g := G2{}
	base := g.Generator()
	as := []*bn254.G2{g.Exp(base, big.NewInt(2)), g.Exp(base, big.NewInt(3))}
	ks := []*big.Int{big.NewInt(5), big.NewInt(7)}
	got, err := ProdExp[*bn254.G2](g, as, ks)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Exp(base, big.NewInt(2*5+3*7))
	if !g.Equal(got, want) {
		t.Fatal("ProdExp wrong")
	}
	if _, err := ProdExp[*bn254.G2](g, as, ks[:1]); err == nil {
		t.Fatal("ProdExp accepted mismatched lengths")
	}
}

func TestPairHelperCounts(t *testing.T) {
	ctr := opcount.New()
	e := Pair(ctr, bn254.G1Generator(), bn254.G2Generator())
	if e.IsOne() {
		t.Fatal("pairing degenerate")
	}
	if ctr.Get(opcount.Pairing) != 1 {
		t.Fatal("pairing not counted")
	}
}
