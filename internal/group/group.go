// Package group presents the bn254 groups behind a uniform generic
// interface so that the schemes (Π_ss, Π_comm/HPSKE, DLR, DLRIBE) can be
// written once over an abstract prime-order group, exactly as the paper
// states them. Adapters optionally carry an opcount.Counter so every
// group operation a scheme performs is measurable (experiments E1, E6).
package group

import (
	"fmt"
	"io"
	"math/big"

	"repro/internal/bn254"
	"repro/internal/opcount"
)

// Group is a multiplicative prime-order group of order r. E is the
// element type. Rand must sample elements obliviously — without anyone
// (including the sampler) learning the discrete logarithm — which the
// paper's §5.2 requires of the groups it uses.
type Group[E any] interface {
	// Identity returns the group identity.
	Identity() E
	// Generator returns the fixed group generator.
	Generator() E
	// Mul returns a·b.
	Mul(a, b E) E
	// Inv returns a⁻¹.
	Inv(a E) E
	// Exp returns a^k.
	Exp(a E, k *big.Int) E
	// Rand samples a uniform element of unknown discrete logarithm.
	Rand(rng io.Reader) (E, error)
	// Equal reports whether a == b.
	Equal(a, b E) bool
	// Bytes returns the canonical encoding of a.
	Bytes(a E) []byte
	// FromBytes decodes an element, validating group membership.
	FromBytes(b []byte) (E, error)
	// ElementLen is the canonical encoding size in bytes.
	ElementLen() int
	// Name identifies the group for diagnostics.
	Name() string
}

// G1 adapts bn254.G1 (written additively) to the multiplicative Group
// interface. Ctr may be nil.
type G1 struct {
	Ctr *opcount.Counter
}

var _ Group[*bn254.G1] = G1{}

// Identity implements Group.
func (g G1) Identity() *bn254.G1 { return bn254.NewG1() }

// Generator implements Group.
func (g G1) Generator() *bn254.G1 { return bn254.G1Generator() }

// Mul implements Group.
func (g G1) Mul(a, b *bn254.G1) *bn254.G1 {
	g.Ctr.Add(opcount.G1Mul, 1)
	return new(bn254.G1).Add(a, b)
}

// Inv implements Group.
func (g G1) Inv(a *bn254.G1) *bn254.G1 { return new(bn254.G1).Neg(a) }

// Exp implements Group.
func (g G1) Exp(a *bn254.G1, k *big.Int) *bn254.G1 {
	g.Ctr.Add(opcount.G1Exp, 1)
	return new(bn254.G1).ScalarMult(a, k)
}

// Rand implements Group (hash-to-curve; no known discrete log).
func (g G1) Rand(rng io.Reader) (*bn254.G1, error) {
	seed, err := readSeed(rng)
	if err != nil {
		return nil, err
	}
	g.Ctr.Add(opcount.HashToG, 1)
	return bn254.HashToG1("group.G1.Rand", seed), nil
}

// Equal implements Group.
func (g G1) Equal(a, b *bn254.G1) bool { return a.Equal(b) }

// Bytes implements Group.
func (g G1) Bytes(a *bn254.G1) []byte { return a.Bytes() }

// FromBytes implements Group.
func (g G1) FromBytes(b []byte) (*bn254.G1, error) { return new(bn254.G1).SetBytes(b) }

// ElementLen implements Group.
func (g G1) ElementLen() int { return bn254.G1Bytes }

// Name implements Group.
func (g G1) Name() string { return "G1" }

// CompressedLen implements Compressor.
func (g G1) CompressedLen() int { return bn254.G1BytesCompressed }

// BytesCompressed implements Compressor.
func (g G1) BytesCompressed(a *bn254.G1) []byte { return a.BytesCompressed() }

// FromBytesCompressed implements Compressor.
func (g G1) FromBytesCompressed(b []byte) (*bn254.G1, error) {
	return new(bn254.G1).SetBytesCompressed(b)
}

// G2 adapts bn254.G2. Ctr may be nil.
type G2 struct {
	Ctr *opcount.Counter
}

var _ Group[*bn254.G2] = G2{}

// Identity implements Group.
func (g G2) Identity() *bn254.G2 { return bn254.NewG2() }

// Generator implements Group.
func (g G2) Generator() *bn254.G2 { return bn254.G2Generator() }

// Mul implements Group.
func (g G2) Mul(a, b *bn254.G2) *bn254.G2 {
	g.Ctr.Add(opcount.G2Mul, 1)
	return new(bn254.G2).Add(a, b)
}

// Inv implements Group.
func (g G2) Inv(a *bn254.G2) *bn254.G2 { return new(bn254.G2).Neg(a) }

// Exp implements Group.
func (g G2) Exp(a *bn254.G2, k *big.Int) *bn254.G2 {
	g.Ctr.Add(opcount.G2Exp, 1)
	return new(bn254.G2).ScalarMult(a, k)
}

// Rand implements Group (hash-to-twist + cofactor clearing).
func (g G2) Rand(rng io.Reader) (*bn254.G2, error) {
	seed, err := readSeed(rng)
	if err != nil {
		return nil, err
	}
	g.Ctr.Add(opcount.HashToG, 1)
	return bn254.HashToG2("group.G2.Rand", seed), nil
}

// Equal implements Group.
func (g G2) Equal(a, b *bn254.G2) bool { return a.Equal(b) }

// Bytes implements Group.
func (g G2) Bytes(a *bn254.G2) []byte { return a.Bytes() }

// FromBytes implements Group.
func (g G2) FromBytes(b []byte) (*bn254.G2, error) { return new(bn254.G2).SetBytes(b) }

// ElementLen implements Group.
func (g G2) ElementLen() int { return bn254.G2Bytes }

// Name implements Group.
func (g G2) Name() string { return "G2" }

// CompressedLen implements Compressor.
func (g G2) CompressedLen() int { return bn254.G2BytesCompressed }

// BytesCompressed implements Compressor.
func (g G2) BytesCompressed(a *bn254.G2) []byte { return a.BytesCompressed() }

// FromBytesCompressed implements Compressor.
func (g G2) FromBytesCompressed(b []byte) (*bn254.G2, error) {
	return new(bn254.G2).SetBytesCompressed(b)
}

// GT adapts bn254.GT. Ctr may be nil.
type GT struct {
	Ctr *opcount.Counter
}

var _ Group[*bn254.GT] = GT{}

// Identity implements Group.
func (g GT) Identity() *bn254.GT { return bn254.GTOne() }

// Generator implements Group.
func (g GT) Generator() *bn254.GT { return bn254.GTGenerator() }

// Mul implements Group.
func (g GT) Mul(a, b *bn254.GT) *bn254.GT {
	g.Ctr.Add(opcount.GTMul, 1)
	return new(bn254.GT).Mul(a, b)
}

// Inv implements Group.
func (g GT) Inv(a *bn254.GT) *bn254.GT {
	g.Ctr.Add(opcount.GTInv, 1)
	return new(bn254.GT).Inverse(a)
}

// Exp implements Group.
func (g GT) Exp(a *bn254.GT, k *big.Int) *bn254.GT {
	g.Ctr.Add(opcount.GTExp, 1)
	return new(bn254.GT).Exp(a, k)
}

// Rand implements Group (pairing of a hashed point; no known dlog).
func (g GT) Rand(rng io.Reader) (*bn254.GT, error) {
	g.Ctr.Add(opcount.HashToG, 1)
	g.Ctr.Add(opcount.Pairing, 1)
	return bn254.RandGT(rng)
}

// Equal implements Group.
func (g GT) Equal(a, b *bn254.GT) bool { return a.Equal(b) }

// Bytes implements Group.
func (g GT) Bytes(a *bn254.GT) []byte { return a.Bytes() }

// FromBytes implements Group.
func (g GT) FromBytes(b []byte) (*bn254.GT, error) { return new(bn254.GT).SetBytes(b) }

// ElementLen implements Group.
func (g GT) ElementLen() int { return bn254.GTBytes }

// Name implements Group.
func (g GT) Name() string { return "GT" }

// Pair computes e(a, b), counting the operation on ctr (nil-safe).
func Pair(ctr *opcount.Counter, a *bn254.G1, b *bn254.G2) *bn254.GT {
	ctr.Add(opcount.Pairing, 1)
	return bn254.Pair(a, b)
}

// MultiPair computes Π e(as[i], bs[i]) through the shared-Miller-loop
// fast path (one final exponentiation total). It counts len(as)
// pairings so op-count experiments stay comparable with a loop of Pair
// calls.
func MultiPair(ctr *opcount.Counter, as []*bn254.G1, bs []*bn254.G2) *bn254.GT {
	ctr.Add(opcount.Pairing, int64(len(as)))
	return bn254.MultiPair(as, bs)
}

// PairBatch computes the len(as) pairings e(as[i], bs[i]) individually
// with batched Miller-loop inversions. Counts len(as) pairings.
func PairBatch(ctr *opcount.Counter, as []*bn254.G1, bs []*bn254.G2) []*bn254.GT {
	ctr.Add(opcount.Pairing, int64(len(as)))
	return bn254.PairBatch(as, bs)
}

// PairTable computes e(a, Q) for a fixed Q through its precomputed line
// table. It counts one pairing — precomputed-line replays must report
// the same op counts as cold pairings so the op-count experiments (E1,
// E6) keep their shapes.
func PairTable(ctr *opcount.Counter, a *bn254.G1, tb *bn254.PairingTable) *bn254.GT {
	ctr.Add(opcount.Pairing, 1)
	return tb.Pair(a)
}

// PairTableBatch computes the len(as) pairings e(as[i], Qᵢ) through
// precomputed tables, fanned out across CPUs. Counts len(as) pairings.
func PairTableBatch(ctr *opcount.Counter, as []*bn254.G1, tabs []*bn254.PairingTable) []*bn254.GT {
	ctr.Add(opcount.Pairing, int64(len(as)))
	return bn254.PairTableBatch(as, tabs)
}

// MultiPairMixed computes Π e(as[i], bs[i]) · Π e(tas[j], Qⱼ) with the
// cold pairs run lockstep and the fixed-Q pairs replayed from tables,
// all under one final exponentiation. Counts len(as)+len(tas) pairings.
func MultiPairMixed(ctr *opcount.Counter, as []*bn254.G1, bs []*bn254.G2, tas []*bn254.G1, tabs []*bn254.PairingTable) *bn254.GT {
	ctr.Add(opcount.Pairing, int64(len(as)+len(tas)))
	return bn254.MultiPairMixed(as, bs, tas, tabs)
}

func readSeed(rng io.Reader) ([]byte, error) {
	seed := make([]byte, 32)
	if rng == nil {
		return nil, fmt.Errorf("group: nil rng; pass crypto/rand.Reader explicitly")
	}
	if _, err := io.ReadFull(rng, seed); err != nil {
		return nil, fmt.Errorf("group: reading seed: %w", err)
	}
	return seed, nil
}

// Compressor is the optional compact wire encoding: groups whose
// elements admit a point-compressed form (a curve x coordinate plus a
// one-byte parity/infinity flag) implement it, and the hpske list
// codec (EncodeList codec v2) uses it to roughly halve frame sizes.
// G1 and G2 implement Compressor; GT does not — Fp12 elements have no
// comparably cheap compression, so GT lists stay in the legacy raw
// codec. Dispatched by type assertion, like MultiExper.
type Compressor[E any] interface {
	// CompressedLen is the compressed encoding size in bytes.
	CompressedLen() int
	// BytesCompressed returns the compressed canonical encoding of a.
	BytesCompressed(a E) []byte
	// FromBytesCompressed decodes a compressed encoding, validating
	// group membership exactly as FromBytes does.
	FromBytesCompressed(b []byte) (E, error)
}

var (
	_ Compressor[*bn254.G1] = G1{}
	_ Compressor[*bn254.G2] = G2{}
)

// MultiExper is the optional fast path for ProdExp: groups that can
// evaluate Π aᵢ^kᵢ faster than n independent exponentiations implement
// it. The bn254 adapters route to the size-aware MultiExp dispatchers
// (Straus interleaving below the crossover, Pippenger bucket
// accumulation above it). Implementations must report the same op
// counts as the naive loop — len(as) Exps and len(as) Muls — so
// experiment tables keep their shapes.
type MultiExper[E any] interface {
	MultiExp(as []E, ks []*big.Int) E
}

// MultiExp implements MultiExper via the bn254.G1MultiExp dispatcher
// (Straus → Pippenger crossover by term count).
func (g G1) MultiExp(as []*bn254.G1, ks []*big.Int) *bn254.G1 {
	g.Ctr.Add(opcount.G1Exp, int64(len(as)))
	g.Ctr.Add(opcount.G1Mul, int64(len(as)))
	return bn254.G1MultiExp(as, ks)
}

// MultiExp implements MultiExper via the bn254.G2MultiExp dispatcher.
func (g G2) MultiExp(as []*bn254.G2, ks []*big.Int) *bn254.G2 {
	g.Ctr.Add(opcount.G2Exp, int64(len(as)))
	g.Ctr.Add(opcount.G2Mul, int64(len(as)))
	return bn254.G2MultiExp(as, ks)
}

// MultiExp implements MultiExper via bn254.GTMultiExp (which itself
// dispatches Straus → bucket method by term count).
func (g GT) MultiExp(as []*bn254.GT, ks []*big.Int) *bn254.GT {
	g.Ctr.Add(opcount.GTExp, int64(len(as)))
	g.Ctr.Add(opcount.GTMul, int64(len(as)))
	return bn254.GTMultiExp(as, ks)
}

// ProdExp returns Π aᵢ^kᵢ over the given group — the multi-exponentiation
// pattern both Π_ss and Π_comm decryption use. Groups implementing
// MultiExper (all three bn254 adapters do) take the shared-doubling
// fast path; ProdExpReference retains the one-exponentiation-at-a-time
// loop for differential testing.
func ProdExp[E any](g Group[E], as []E, ks []*big.Int) (E, error) {
	var zero E
	if len(as) != len(ks) {
		return zero, fmt.Errorf("group: ProdExp length mismatch %d vs %d", len(as), len(ks))
	}
	if me, ok := any(g).(MultiExper[E]); ok {
		return me.MultiExp(as, ks), nil
	}
	return ProdExpReference(g, as, ks)
}

// ProdExpReference is the naive Π aᵢ^kᵢ loop ProdExp is differentially
// tested against.
func ProdExpReference[E any](g Group[E], as []E, ks []*big.Int) (E, error) {
	var zero E
	if len(as) != len(ks) {
		return zero, fmt.Errorf("group: ProdExp length mismatch %d vs %d", len(as), len(ks))
	}
	acc := g.Identity()
	for i := range as {
		acc = g.Mul(acc, g.Exp(as[i], ks[i]))
	}
	return acc, nil
}
