// Package baselines implements the comparison schemes of experiment E1
// (the paper's §1.2.1, footnote 3). None of the continual-leakage
// schemes the paper compares against ([11] BKKV, [29] LLW, [30] LRW,
// [17] DLWW) has a public implementation; what footnote 3 compares is
// operation counts and ciphertext sizes, so this package provides:
//
//   - NaorSegev: a concrete BHHO/NS-style bounded-leakage PKE (the
//     leakage-resilience technique DLR's sharing is built on) — leakage
//     resilient but with NO refresh, so continual leakage eventually
//     recovers its key (E5's cautionary baseline);
//   - Bitwise: a scheme with the BKKV cost shape — bit-by-bit
//     encryption, ω(n) exponentiations and ω(n) group elements per
//     ciphertext — executing real group operations so its measured cost
//     is honest;
//   - ElGamalGT: pairing-based ElGamal with the exact DLR ciphertext
//     shape, the single-processor, leakage-oblivious cost floor.
package baselines

import (
	"fmt"
	"io"
	"math/big"

	"repro/internal/bn254"
	"repro/internal/group"
	"repro/internal/opcount"
	"repro/internal/scalar"
)

// NaorSegev is the BHHO/NS-style bounded-leakage PKE over G1:
// sk = (s1,…,sℓ), pk = (g1,…,gℓ, h = Π gᵢ^{sᵢ}),
// Enc(m) = (g1^r,…,gℓ^r, m·h^r). Tolerates bounded leakage on sk via the
// leftover hash lemma but has no refresh: its tolerance is a one-shot
// budget, not per-period.
type NaorSegev struct {
	Ell int
	G   group.G1

	bases []*bn254.G1
	h     *bn254.G1
	sk    []*big.Int
}

// NewNaorSegev generates a scheme instance with sharing length ell.
func NewNaorSegev(rng io.Reader, ell int, ctr *opcount.Counter) (*NaorSegev, error) {
	if ell < 1 {
		return nil, fmt.Errorf("baselines: ell must be ≥ 1")
	}
	g := group.G1{Ctr: ctr}
	bases := make([]*bn254.G1, ell)
	for i := range bases {
		b, err := g.Rand(rng)
		if err != nil {
			return nil, err
		}
		bases[i] = b
	}
	sk, err := scalar.RandVector(rng, ell)
	if err != nil {
		return nil, err
	}
	h, err := group.ProdExp[*bn254.G1](g, bases, sk)
	if err != nil {
		return nil, err
	}
	return &NaorSegev{Ell: ell, G: g, bases: bases, h: h, sk: sk}, nil
}

// NSCiphertext is (g1^r,…,gℓ^r, m·h^r).
type NSCiphertext struct {
	Coins   []*bn254.G1
	Payload *bn254.G1
}

// Size returns the encoded ciphertext size in bytes.
func (c *NSCiphertext) Size() int { return (len(c.Coins) + 1) * bn254.G1Bytes }

// Encrypt encrypts m ∈ G1.
func (n *NaorSegev) Encrypt(rng io.Reader, m *bn254.G1) (*NSCiphertext, error) {
	r, err := scalar.Rand(rng)
	if err != nil {
		return nil, err
	}
	coins := make([]*bn254.G1, n.Ell)
	for i, b := range n.bases {
		coins[i] = n.G.Exp(b, r)
	}
	payload := n.G.Mul(m, n.G.Exp(n.h, r))
	return &NSCiphertext{Coins: coins, Payload: payload}, nil
}

// Decrypt recovers m = c0 / Π cᵢ^{sᵢ}.
func (n *NaorSegev) Decrypt(ct *NSCiphertext) (*bn254.G1, error) {
	if len(ct.Coins) != n.Ell {
		return nil, fmt.Errorf("baselines: ciphertext has %d coins, want %d", len(ct.Coins), n.Ell)
	}
	mask, err := group.ProdExp[*bn254.G1](n.G, ct.Coins, n.sk)
	if err != nil {
		return nil, err
	}
	return n.G.Mul(ct.Payload, n.G.Inv(mask)), nil
}

// SecretBytes serializes the (never-refreshed) secret key, for leakage
// experiments.
func (n *NaorSegev) SecretBytes() []byte { return scalar.Bytes(n.sk) }

// Bitwise is the BKKV-cost-shape baseline: it encrypts an n-bit message
// bit-by-bit with ElGamal over G1, costing 2 exponentiations and 2 group
// elements PER BIT — the ω(n) exponentiations / ω(n)-element ciphertexts
// of footnote 3, against DLR's constant 2 exponentiations and 2 elements
// for a full group-element message.
type Bitwise struct {
	G  group.G1
	pk *bn254.G1
	sk *big.Int
}

// NewBitwise generates a key pair.
func NewBitwise(rng io.Reader, ctr *opcount.Counter) (*Bitwise, error) {
	g := group.G1{Ctr: ctr}
	sk, err := scalar.Rand(rng)
	if err != nil {
		return nil, err
	}
	pk := g.Exp(g.Generator(), sk)
	return &Bitwise{G: g, pk: pk, sk: sk}, nil
}

// BitwiseCiphertext holds one ElGamal pair per message bit.
type BitwiseCiphertext struct {
	Pairs [][2]*bn254.G1
}

// Size returns the encoded ciphertext size in bytes.
func (c *BitwiseCiphertext) Size() int { return len(c.Pairs) * 2 * bn254.G1Bytes }

// Encrypt encrypts msg bit-by-bit: bit b becomes (g^r, g^b·pk^r).
func (b *Bitwise) Encrypt(rng io.Reader, msg []byte) (*BitwiseCiphertext, error) {
	gen := b.G.Generator()
	out := &BitwiseCiphertext{Pairs: make([][2]*bn254.G1, 8*len(msg))}
	for i := 0; i < 8*len(msg); i++ {
		bit := (msg[i/8] >> (i % 8)) & 1
		r, err := scalar.Rand(rng)
		if err != nil {
			return nil, err
		}
		c1 := b.G.Exp(gen, r)
		c2 := b.G.Exp(b.pk, r)
		if bit == 1 {
			c2 = b.G.Mul(c2, gen)
		}
		out.Pairs[i] = [2]*bn254.G1{c1, c2}
	}
	return out, nil
}

// Decrypt recovers the message: bit = 0 iff c2/c1^sk is the identity.
func (b *Bitwise) Decrypt(ct *BitwiseCiphertext) ([]byte, error) {
	if len(ct.Pairs)%8 != 0 {
		return nil, fmt.Errorf("baselines: bitwise ciphertext length %d not a byte multiple", len(ct.Pairs))
	}
	gen := b.G.Generator()
	msg := make([]byte, len(ct.Pairs)/8)
	for i, pair := range ct.Pairs {
		blind := b.G.Mul(pair[1], b.G.Inv(b.G.Exp(pair[0], b.sk)))
		switch {
		case blind.IsInfinity():
			// bit 0
		case blind.Equal(gen):
			msg[i/8] |= 1 << (i % 8)
		default:
			return nil, fmt.Errorf("baselines: bit %d decrypts to neither 0 nor 1", i)
		}
	}
	return msg, nil
}

// ElGamalGT is single-processor pairing ElGamal with DLR's exact
// ciphertext shape (g^t, m·e(g1,g2)^t) — the cost floor: what a scheme
// with no leakage resilience at all pays.
type ElGamalGT struct {
	E  *bn254.GT // e(g1, g2)
	sk *bn254.G2 // g2^α
	// skTab is the precomputed line table for sk: the decryption pairing
	// e(A, sk) has a fixed G2 side for the life of the key, so every
	// Decrypt is a table replay.
	skTab *bn254.PairingTable
	ctr   *opcount.Counter
}

// NewElGamalGT generates a key pair.
func NewElGamalGT(rng io.Reader, ctr *opcount.Counter) (*ElGamalGT, error) {
	g2 := group.G2{Ctr: ctr}
	alpha, err := scalar.Rand(rng)
	if err != nil {
		return nil, err
	}
	g1 := new(bn254.G1).ScalarBaseMult(alpha)
	ctr.Add(opcount.G1Exp, 1)
	g2pt, err := g2.Rand(rng)
	if err != nil {
		return nil, err
	}
	e := group.Pair(ctr, g1, g2pt)
	sk := g2.Exp(g2pt, alpha)
	return &ElGamalGT{E: e, sk: sk, skTab: bn254.NewPairingTable(sk), ctr: ctr}, nil
}

// EGCiphertext is (A, B) = (g^t, m·E^t).
type EGCiphertext struct {
	A *bn254.G1
	B *bn254.GT
}

// Size returns the encoded ciphertext size in bytes.
func (c *EGCiphertext) Size() int { return bn254.G1Bytes + bn254.GTBytes }

// Encrypt encrypts m ∈ GT.
func (e *ElGamalGT) Encrypt(rng io.Reader, m *bn254.GT) (*EGCiphertext, error) {
	t, err := scalar.Rand(rng)
	if err != nil {
		return nil, err
	}
	a := new(bn254.G1).ScalarBaseMult(t)
	e.ctr.Add(opcount.G1Exp, 1)
	b := new(bn254.GT).Exp(e.E, t)
	e.ctr.Add(opcount.GTExp, 1)
	b.Mul(b, m)
	e.ctr.Add(opcount.GTMul, 1)
	return &EGCiphertext{A: a, B: b}, nil
}

// Decrypt recovers m = B / e(A, g2^α), replaying the key's precomputed
// Miller-loop line table against the per-ciphertext A.
func (e *ElGamalGT) Decrypt(ct *EGCiphertext) (*bn254.GT, error) {
	mask := group.PairTable(e.ctr, ct.A, e.skTab)
	return new(bn254.GT).Div(ct.B, mask), nil
}

// RandMessage samples a random GT plaintext.
func (e *ElGamalGT) RandMessage(rng io.Reader) (*bn254.GT, error) {
	u, err := scalar.Rand(rng)
	if err != nil {
		return nil, err
	}
	return new(bn254.GT).Exp(e.E, u), nil
}
