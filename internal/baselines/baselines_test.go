package baselines

import (
	"bytes"
	"crypto/rand"
	"testing"

	"repro/internal/bn254"
	"repro/internal/opcount"
)

func TestNaorSegevRoundTrip(t *testing.T) {
	ns, err := NewNaorSegev(rand.Reader, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := bn254.HashToG1("baseline-test", []byte("msg"))
	ct, err := ns.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ns.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("NS decryption failed")
	}
	if ct.Size() != 6*bn254.G1Bytes {
		t.Fatalf("NS ciphertext size %d, want %d", ct.Size(), 6*bn254.G1Bytes)
	}
}

func TestNaorSegevValidation(t *testing.T) {
	if _, err := NewNaorSegev(rand.Reader, 0, nil); err == nil {
		t.Fatal("accepted ℓ = 0")
	}
	ns, _ := NewNaorSegev(rand.Reader, 3, nil)
	m := bn254.HashToG1("x", nil)
	ct, _ := ns.Encrypt(rand.Reader, m)
	ct.Coins = ct.Coins[:2]
	if _, err := ns.Decrypt(ct); err == nil {
		t.Fatal("accepted short ciphertext")
	}
}

func TestNaorSegevSecretNeverChanges(t *testing.T) {
	// The point of the baseline: there is no refresh; the secret is
	// static, so continual leakage accumulates against a fixed target.
	ns, _ := NewNaorSegev(rand.Reader, 3, nil)
	s1 := ns.SecretBytes()
	m := bn254.HashToG1("y", nil)
	if _, err := ns.Encrypt(rand.Reader, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, ns.SecretBytes()) {
		t.Fatal("NS secret changed unexpectedly")
	}
}

func TestBitwiseRoundTrip(t *testing.T) {
	bw, err := NewBitwise(rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte{0x00, 0xFF, 0xA5, 0x3C}
	ct, err := bw.Encrypt(rand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bw.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("bitwise round trip: got %x want %x", got, msg)
	}
}

func TestBitwiseCostShape(t *testing.T) {
	// Footnote 3's claim: bit-by-bit encryption costs ω(n)
	// exponentiations and produces ω(n) group elements. For an n-bit
	// message: 2n exponentiations, 2n elements.
	ctr := opcount.New()
	bw, err := NewBitwise(rand.Reader, ctr)
	if err != nil {
		t.Fatal(err)
	}
	ctr.Reset()
	msg := make([]byte, 4) // 32 bits
	if _, err := bw.Encrypt(rand.Reader, msg); err != nil {
		t.Fatal(err)
	}
	if got := ctr.Get(opcount.G1Exp); got != 64 {
		t.Fatalf("bitwise encryption of 32 bits used %d exps, want 64", got)
	}
	ct, _ := bw.Encrypt(rand.Reader, msg)
	if ct.Size() != 32*2*bn254.G1Bytes {
		t.Fatalf("bitwise ciphertext size %d, want %d", ct.Size(), 32*2*bn254.G1Bytes)
	}
}

func TestElGamalGTRoundTrip(t *testing.T) {
	eg, err := NewElGamalGT(rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := eg.RandMessage(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := eg.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eg.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("ElGamal-GT round trip failed")
	}
}

func TestElGamalGTMatchesDLRShape(t *testing.T) {
	// The cost-floor baseline has DLR's exact ciphertext shape: 2
	// elements, 2 exponentiations per encryption.
	ctr := opcount.New()
	eg, err := NewElGamalGT(rand.Reader, ctr)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := eg.RandMessage(rand.Reader)
	ctr.Reset()
	ct, err := eg.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	exps := ctr.Get(opcount.G1Exp) + ctr.Get(opcount.G2Exp) + ctr.Get(opcount.GTExp)
	if exps != 2 {
		t.Fatalf("ElGamal-GT encryption used %d exps, want 2", exps)
	}
	if ct.Size() != bn254.G1Bytes+bn254.GTBytes {
		t.Fatalf("ciphertext size %d, want %d", ct.Size(), bn254.G1Bytes+bn254.GTBytes)
	}
}
