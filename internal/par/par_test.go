package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		seen := make([]atomic.Int32, n)
		ForEach(n, func(i int) {
			seen[i].Add(1)
		})
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

func TestForEachParallelism(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	var sum atomic.Int64
	ForEach(100, func(i int) {
		sum.Add(int64(i))
	})
	if got := sum.Load(); got != 4950 {
		t.Fatalf("sum = %d, want 4950", got)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	ForEach(8, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}

func TestForEachNegativeN(t *testing.T) {
	called := false
	ForEach(-5, func(int) { called = true })
	if called {
		t.Fatal("f called for negative n")
	}
}
