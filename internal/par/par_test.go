package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		seen := make([]atomic.Int32, n)
		ForEach(n, func(i int) {
			seen[i].Add(1)
		})
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

func TestForEachParallelism(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	var sum atomic.Int64
	ForEach(100, func(i int) {
		sum.Add(int64(i))
	})
	if got := sum.Load(); got != 4950 {
		t.Fatalf("sum = %d, want 4950", got)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	ForEach(8, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}

func TestForEachNegativeN(t *testing.T) {
	called := false
	ForEach(-5, func(int) { called = true })
	if called {
		t.Fatal("f called for negative n")
	}
}

// checkChunks validates the Chunks contract: contiguous cover of
// [0, n), at most max(1, Workers()) chunks, and — when more than one
// chunk is returned — every chunk at least minChunk long.
func checkChunks(t *testing.T, n, minChunk int, cs [][2]int) {
	t.Helper()
	if n <= 0 {
		if cs != nil {
			t.Fatalf("Chunks(%d, %d) = %v, want nil", n, minChunk, cs)
		}
		return
	}
	if len(cs) == 0 || len(cs) > Workers() && len(cs) != 1 {
		t.Fatalf("Chunks(%d, %d): %d chunks with %d workers", n, minChunk, len(cs), Workers())
	}
	lo := 0
	for _, c := range cs {
		if c[0] != lo || c[1] <= c[0] {
			t.Fatalf("Chunks(%d, %d) = %v: not a contiguous cover", n, minChunk, cs)
		}
		if len(cs) > 1 && c[1]-c[0] < minChunk {
			t.Fatalf("Chunks(%d, %d) = %v: chunk shorter than minChunk", n, minChunk, cs)
		}
		lo = c[1]
	}
	if lo != n {
		t.Fatalf("Chunks(%d, %d) = %v: covers [0, %d), want [0, %d)", n, minChunk, cs, lo, n)
	}
}

func TestChunksCoverAndBounds(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	for _, n := range []int{-3, 0, 1, 2, 5, 7, 16, 100, 1001} {
		for _, min := range []int{0, 1, 3, 8, 50, 2000} {
			checkChunks(t, n, min, Chunks(n, min))
		}
	}
}

func TestChunksSerialWhenSmallOrSingleWorker(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	// n < 2·minChunk can never yield two chunks of ≥ minChunk.
	if cs := Chunks(15, 8); len(cs) != 1 || cs[0] != [2]int{0, 15} {
		t.Fatalf("Chunks(15, 8) = %v, want one full chunk", cs)
	}
	runtime.GOMAXPROCS(1)
	if cs := Chunks(1000, 1); len(cs) != 1 {
		t.Fatalf("Chunks with 1 worker = %v, want one chunk", cs)
	}
}
