// Package par provides bounded-worker parallel fan-out helpers for
// the independent loops in the protocol stack and the curve
// primitives: per-coordinate fan-out (hpske transports, dlr share
// combinations, device protocol instances) via ForEach, and
// contiguous-range partitioning (Pippenger window groups, lockstep
// Miller-loop chunks, batch-inversion segments) via Chunks.
//
// Work is dispatched by an atomic index so workers self-balance, and
// the worker count is capped at GOMAXPROCS — on a single-core host
// every helper degrades to a plain sequential loop with no goroutine
// overhead. Callers that trade per-item overhead for parallelism
// (extra accumulators, extra interior inversions) gate on Workers()
// and a size threshold so small inputs keep their serial fast path;
// docs/ARCHITECTURE.md ("Parallel execution model") records which
// phases fan out and at what sizes.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach invokes f(i) for every i in [0, n), spreading calls across
// min(n, GOMAXPROCS) workers and returning when all calls have
// finished. f must be safe to call concurrently from multiple
// goroutines; iteration order is unspecified. Panics in f propagate to
// the caller (from an arbitrary worker, once per ForEach).
// Workers returns the fan-out cap every helper in this package
// honours: GOMAXPROCS at call time. Callers use it to decide whether a
// parallel variant can win at all (Workers() == 1 means any chunking
// overhead is pure loss) and to size per-worker state.
func Workers() int { return runtime.GOMAXPROCS(0) }

// Chunks partitions [0, n) into at most Workers() contiguous
// half-open ranges [lo, hi), each covering at least minChunk indices
// (the last chunks may be one element larger to absorb the
// remainder). It returns nil for n ≤ 0 and a single full-range chunk
// whenever parallelism cannot help — one worker, or n < 2·minChunk —
// so callers can branch on len(chunks) > 1 to keep their serial
// zero-overhead path.
func Chunks(n, minChunk int) [][2]int {
	if n <= 0 {
		return nil
	}
	if minChunk < 1 {
		minChunk = 1
	}
	k := n / minChunk
	if w := Workers(); k > w {
		k = w
	}
	if k < 1 {
		k = 1
	}
	out := make([][2]int, 0, k)
	base, rem := n/k, n%k
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

func ForEach(n int, f func(int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
