// Package par provides a bounded-worker parallel fan-out helper for
// the per-coordinate independent loops in the protocol stack (hpske
// transports, dlr share combinations, device protocol instances).
//
// Work is dispatched by an atomic index so workers self-balance, and
// the worker count is capped at GOMAXPROCS — on a single-core host the
// helper degrades to a plain sequential loop with no goroutine
// overhead.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach invokes f(i) for every i in [0, n), spreading calls across
// min(n, GOMAXPROCS) workers and returning when all calls have
// finished. f must be safe to call concurrently from multiple
// goroutines; iteration order is unspecified. Panics in f propagate to
// the caller (from an arbitrary worker, once per ForEach).
func ForEach(n int, f func(int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
