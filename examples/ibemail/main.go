// Command ibemail demonstrates DLRIBE (§4.2) as an identity-based
// encrypted mail system: senders encrypt to email addresses with no key
// lookup; the key authority's master secret is split across two devices
// and never assembled; per-user decryption keys are themselves split and
// refreshed. Both the master key and identity keys leak continually in
// the model — and both are refreshed.
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"repro/internal/dibe"
	"repro/internal/params"
)

func main() {
	log.SetFlags(0)
	prm := params.MustNew(80, 256)
	const nID = 16 // identity-hash dimension

	// The key authority: master shares on two devices.
	pk, auth1, auth2, err := dibe.Gen(rand.Reader, prm, nID, nil, nil)
	if err != nil {
		log.Fatalf("authority setup: %v", err)
	}
	fmt.Println("authority online; master key split across two devices")

	// Alice registers: the 2-party extraction protocol derives her key
	// shares without reconstructing the master secret.
	alice1, alice2, err := dibe.Extract(rand.Reader, auth1, auth2, "alice@example.com")
	if err != nil {
		log.Fatalf("extracting alice's key: %v", err)
	}
	fmt.Println("alice's key shares issued (master secret never assembled)")

	// Bob sends mail to alice@example.com — no directory lookup, just
	// the address.
	m, err := dibe.RandMessage(rand.Reader, pk)
	if err != nil {
		log.Fatalf("sampling message: %v", err)
	}
	ct, err := dibe.Encrypt(rand.Reader, pk, "alice@example.com", m, nil)
	if err != nil {
		log.Fatalf("encrypting: %v", err)
	}
	fmt.Printf("mail encrypted to alice@example.com (%d bytes)\n", len(ct.Bytes()))

	// Alice's two devices jointly decrypt.
	got, err := dibe.Decrypt(rand.Reader, alice1, alice2, ct)
	if err != nil {
		log.Fatalf("decrypting: %v", err)
	}
	fmt.Printf("alice decrypted: message matches = %v\n", got.Equal(m))

	// Period boundary: refresh both the master shares and alice's key
	// shares. Every secret in the system changes; the public key and
	// alice's address do not.
	if err := dibe.RefreshMaster(rand.Reader, auth1, auth2); err != nil {
		log.Fatalf("master refresh: %v", err)
	}
	if err := dibe.RefreshIDKey(rand.Reader, alice1, alice2); err != nil {
		log.Fatalf("identity-key refresh: %v", err)
	}
	fmt.Println("master and identity key shares refreshed")

	// Old mail still decrypts; new registrations still work.
	got, err = dibe.Decrypt(rand.Reader, alice1, alice2, ct)
	if err != nil {
		log.Fatalf("decrypting after refresh: %v", err)
	}
	fmt.Printf("old mail decrypts after refresh: %v\n", got.Equal(m))

	carol1, carol2, err := dibe.Extract(rand.Reader, auth1, auth2, "carol@example.com")
	if err != nil {
		log.Fatalf("extracting carol's key: %v", err)
	}
	ct2, err := dibe.Encrypt(rand.Reader, pk, "carol@example.com", m, nil)
	if err != nil {
		log.Fatalf("encrypting to carol: %v", err)
	}
	got2, err := dibe.Decrypt(rand.Reader, carol1, carol2, ct2)
	if err != nil {
		log.Fatalf("carol decrypting: %v", err)
	}
	fmt.Printf("carol (registered after refresh) decrypts: %v\n", got2.Equal(m))

	// Wrong-identity isolation: alice's shares cannot read carol's mail.
	if _, err := dibe.Decrypt(rand.Reader, alice1, alice2, ct2); err != nil {
		fmt.Println("alice cannot decrypt carol's mail: identity binding enforced")
	}
}
