// Command quickstart demonstrates the full DLR life cycle in-process:
// key generation with shares split across two devices, encryption,
// 2-party decryption, key-share refresh, and decryption again under the
// refreshed shares — the continual-leakage defense loop of the paper.
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"repro/internal/dlr"
	"repro/internal/params"
)

func main() {
	log.SetFlags(0)

	// Parameters: statistical security 2⁻⁸⁰, leakage budget λ = 256
	// bits per period from P1 (P2 tolerates full-share leakage).
	prm := params.MustNew(80, 256)
	fmt.Printf("parameters: %v\n", prm)
	fmt.Printf("P1 tolerated leakage: %d bits/period (rate %.3f of its secret memory)\n",
		prm.B1(), prm.Rate1(params.ModeOptimalRate))

	// Key generation: the dealer hands P1 the encrypted share and P2 the
	// exponent share; the public key is a single GT element.
	pk, p1, p2, err := dlr.Gen(rand.Reader, prm)
	if err != nil {
		log.Fatalf("key generation: %v", err)
	}
	fmt.Printf("public key: %d bytes\n", len(pk.Bytes()))

	// Encrypt an application message (hybrid KEM/DEM over the GT-native
	// scheme).
	msg := []byte("two leaky devices are better than one")
	ct, err := dlr.EncryptBytes(rand.Reader, pk, msg, nil)
	if err != nil {
		log.Fatalf("encrypt: %v", err)
	}
	fmt.Printf("ciphertext: %d bytes (KEM %d + DEM %d)\n",
		len(ct.Bytes()), len(ct.KEM.Bytes()), len(ct.Sealed))

	// Distributed decryption: P1 and P2 run the 2-party protocol; the
	// secret key is never assembled anywhere.
	pt, err := dlr.DecryptBytesProtocol(rand.Reader, p1, p2, ct)
	if err != nil {
		log.Fatalf("decrypt: %v", err)
	}
	fmt.Printf("decrypted: %q\n", pt)

	// End of period: refresh the shares. Anything an adversary leaked
	// about the old shares is now useless.
	if _, err := dlr.Refresh(rand.Reader, p1, p2); err != nil {
		log.Fatalf("refresh: %v", err)
	}
	if err := p1.BeginPeriod(rand.Reader); err != nil {
		log.Fatalf("period rotation: %v", err)
	}
	fmt.Println("shares refreshed; old shares erased")

	// Old ciphertexts still decrypt under the new shares: the public key
	// never changes.
	pt, err = dlr.DecryptBytesProtocol(rand.Reader, p1, p2, ct)
	if err != nil {
		log.Fatalf("decrypt after refresh: %v", err)
	}
	fmt.Printf("decrypted after refresh: %q\n", pt)
}
