// Command cca2files demonstrates DLRCCA2 (§4.3) — the CCA2-secure
// distributed scheme — as a file-drop service where active attackers
// control the ciphertexts that reach the decryptors: each ciphertext
// carries a one-time signature binding it to a fresh identity, so any
// tampering or splicing is rejected before the devices touch secret
// material, and a decryption oracle never helps against the target
// ciphertext.
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"repro/internal/bn254"
	"repro/internal/cca2"
	"repro/internal/params"
)

func main() {
	log.SetFlags(0)
	prm := params.MustNew(80, 256)
	const nID = 16

	pk, dev1, dev2, err := cca2.Gen(rand.Reader, prm, nID, nil, nil)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	fmt.Println("CCA2 drop-box online; decryption key split across two devices")

	// A sender drops a file.
	m, err := cca2.RandMessage(rand.Reader, pk)
	if err != nil {
		log.Fatalf("sampling session element: %v", err)
	}
	ct, err := cca2.Encrypt(rand.Reader, pk, m, nil)
	if err != nil {
		log.Fatalf("encrypt: %v", err)
	}
	fmt.Printf("ciphertext: %d bytes (OTS vk + IBE ct + signature)\n", len(ct.Bytes()))

	// The legitimate recipient decrypts: verify → distributed extract →
	// distributed decrypt.
	got, err := cca2.Decrypt(rand.Reader, pk, dev1, dev2, ct)
	if err != nil {
		log.Fatalf("decrypt: %v", err)
	}
	fmt.Printf("legitimate decryption ok: %v\n", got.Equal(m))

	// An active attacker tampers with the payload: rejected before any
	// secret-key work happens.
	tampered := *ct
	inner := *ct.C
	inner.C = new(bn254.GT).Mul(ct.C.C, ct.C.C)
	tampered.C = &inner
	if err := cca2.Validate(&tampered); err != nil {
		fmt.Printf("tampered ciphertext rejected: %v\n", err)
	}

	// The attacker splices a verification key from another ciphertext:
	// the identity binding catches it.
	other, err := cca2.Encrypt(rand.Reader, pk, m, nil)
	if err != nil {
		log.Fatal(err)
	}
	spliced := *ct
	spliced.VK = other.VK
	if err := cca2.Validate(&spliced); err != nil {
		fmt.Printf("vk-spliced ciphertext rejected: %v\n", err)
	}

	// Decryptions of unrelated ciphertexts (the oracle an active
	// adversary gets) never help with the target: each ciphertext has
	// its own one-time identity.
	got2, err := cca2.Decrypt(rand.Reader, pk, dev1, dev2, other)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle decryption of an unrelated ciphertext: %v (its identity %q differs from the target's %q)\n",
		got2.Equal(m), other.VK.Fingerprint()[:12]+"…", ct.VK.Fingerprint()[:12]+"…")
}
