// Command securestorage demonstrates §4.4: long-term secret storage on
// hardware that continually leaks. Values live DLR-encrypted on the
// devices; every period the key shares are refreshed and the at-rest
// ciphertexts re-randomized. The example attaches a leakage "adversary"
// that records bounded leakage from both devices each period and shows
// that nothing it accumulates survives a refresh, while the data remains
// perfectly retrievable.
package main

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"log"

	"repro/internal/params"
	"repro/internal/storage"
)

func main() {
	log.SetFlags(0)
	prm := params.MustNew(80, 256)
	st, err := storage.New(rand.Reader, prm)
	if err != nil {
		log.Fatalf("creating store: %v", err)
	}

	secrets := map[string][]byte{
		"db-password":   []byte("hunter2-but-long"),
		"signing-seed":  []byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08},
		"backup-phrase": []byte("correct horse battery staple"),
	}
	for k, v := range secrets {
		if err := st.Put(rand.Reader, k, v); err != nil {
			log.Fatalf("put %q: %v", k, err)
		}
	}
	fmt.Printf("stored %d values: %v\n", len(secrets), st.Keys())

	// The adversary: each period it gets λ bits from device 1 and sees
	// the at-rest ciphertexts. It keeps everything it ever saw.
	leakBudgetBytes := prm.B1() / 8
	var harvested [][]byte

	const periods = 5
	for t := 0; t < periods; t++ {
		p1Secret, _ := st.DeviceSecrets()
		chunk := p1Secret[:min(leakBudgetBytes, len(p1Secret))]
		harvested = append(harvested, append([]byte(nil), chunk...))

		ctBefore, _ := st.CiphertextBytes("db-password")
		if err := st.RefreshPeriod(rand.Reader); err != nil {
			log.Fatalf("refresh period %d: %v", t, err)
		}
		ctAfter, _ := st.CiphertextBytes("db-password")
		fmt.Printf("period %d: leaked %d bytes from device 1; at-rest ciphertext changed: %v\n",
			t, len(chunk), !bytes.Equal(ctBefore, ctAfter))
	}

	// Everything the adversary harvested refers to erased share
	// generations: no two harvested chunks even agree.
	distinct := true
	for i := 1; i < len(harvested); i++ {
		if bytes.Equal(harvested[i], harvested[0]) {
			distinct = false
		}
	}
	fmt.Printf("\nadversary harvested %d chunks across periods; all from different (erased) shares: %v\n",
		len(harvested), distinct)

	// The owner still reads everything.
	for k, want := range secrets {
		got, err := st.Get(rand.Reader, k)
		if err != nil {
			log.Fatalf("get %q: %v", k, err)
		}
		if !bytes.Equal(got, want) {
			log.Fatalf("value %q corrupted", k)
		}
	}
	fmt.Printf("all %d values intact after %d leaky periods\n", len(secrets), st.Period())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
