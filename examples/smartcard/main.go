// Command smartcard demonstrates the paper's "Auxiliary Device"
// deployment (§1.1): the main processor P1 keeps one share while a
// minimal auxiliary device P2 — here a TCP server standing in for a
// smart card — keeps the other. The example runs decryption and refresh
// over a real socket and prints the measured per-device operation
// counts, showing that P2 performs only exponentiations and
// multiplications on elements it receives: zero pairings, zero G1 work.
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"net"

	"repro/internal/device"
	"repro/internal/dlr"
	"repro/internal/opcount"
	"repro/internal/params"
)

func main() {
	log.SetFlags(0)
	prm := params.MustNew(80, 256)
	ctr1, ctr2 := opcount.New(), opcount.New()
	pk, p1, p2, err := dlr.Gen(rand.Reader, prm, dlr.WithCounters(ctr1, ctr2))
	if err != nil {
		log.Fatalf("key generation: %v", err)
	}

	// The "smart card": P2 serving the 2-party protocols over TCP.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		ch := device.NewConnChannel(conn)
		defer ch.Close()
		// Serve until the main processor hangs up.
		_ = p2.ServeLoop(ch)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	rec := device.NewRecorder(device.NewConnChannel(conn))
	defer rec.Close()

	// One full period over the wire: decrypt, then refresh.
	m, err := dlr.RandMessage(rand.Reader, pk)
	if err != nil {
		log.Fatalf("sampling message: %v", err)
	}
	ct, err := dlr.Encrypt(rand.Reader, pk, m, ctr1)
	if err != nil {
		log.Fatalf("encrypt: %v", err)
	}
	got, err := p1.RunDec(rand.Reader, rec, ct)
	if err != nil {
		log.Fatalf("distributed decryption over TCP: %v", err)
	}
	if !got.Equal(m) {
		log.Fatal("wrong message")
	}
	fmt.Println("decryption over TCP: ok")

	if err := p1.RunRef(rand.Reader, rec); err != nil {
		log.Fatalf("refresh over TCP: %v", err)
	}
	fmt.Println("refresh over TCP: ok")

	fmt.Printf("\ntraffic: %d bytes to card, %d bytes from card\n",
		rec.BytesSent(), rec.BytesRecv())

	fmt.Println("\nper-device operation counts (the paper's asymmetry claim):")
	fmt.Printf("%-22s %12s %12s\n", "operation", "P1 (host)", "P2 (card)")
	for _, op := range []opcount.Op{
		opcount.Pairing, opcount.G1Exp, opcount.G2Exp, opcount.GTExp,
		opcount.G2Mul, opcount.GTMul, opcount.HashToG,
	} {
		fmt.Printf("%-22s %12d %12d\n", op, ctr1.Get(op), ctr2.Get(op))
	}
	if ctr2.Get(opcount.Pairing) == 0 && ctr2.Get(opcount.G1Exp) == 0 {
		fmt.Println("\nP2 did zero pairings and zero G1 operations — it is smart-card simple.")
	}
}
