// Command dlrclient is the P1-side tool: it encrypts files with the
// public key, and decrypts or refreshes by driving the 2-party protocol
// against a running dlrdevice (P2).
//
//	dlrclient encrypt -pk keys/pk.bin -in secret.txt -out secret.dlr
//	dlrclient decrypt -pk keys/pk.bin -share keys/share1.bin \
//	    -addr 127.0.0.1:7700 -in secret.dlr
//	dlrclient refresh -pk keys/pk.bin -share keys/share1.bin \
//	    -addr 127.0.0.1:7700
//
// decrypt and refresh rewrite the P1 share file in place when the
// protocol changes it.
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"repro/internal/device"
	"repro/internal/dlr"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		pkPath    = fs.String("pk", "pk.bin", "public key file")
		sharePath = fs.String("share", "share1.bin", "P1 share file")
		addr      = fs.String("addr", "127.0.0.1:7700", "dlrdevice address")
		in        = fs.String("in", "", "input file")
		out       = fs.String("out", "", "output file (default stdout)")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		log.Fatal(err)
	}

	pk := loadPK(*pkPath)
	switch cmd {
	case "encrypt":
		msg := readInput(*in)
		ct, err := dlr.EncryptBytes(rand.Reader, pk, msg, nil)
		if err != nil {
			log.Fatalf("encrypt: %v", err)
		}
		writeOutput(*out, ct.Bytes())

	case "decrypt":
		p1 := loadP1(pk, *sharePath)
		ct, err := dlr.HybridCiphertextFromBytes(readInput(*in))
		if err != nil {
			log.Fatalf("decoding ciphertext: %v", err)
		}
		ch := dialDevice(*addr)
		defer ch.Close()
		session, err := p1.RunDec(rand.Reader, ch, ct.KEM)
		if err != nil {
			log.Fatalf("distributed decryption: %v", err)
		}
		msg, err := dlr.DecryptBytes(ct, session)
		if err != nil {
			log.Fatalf("opening payload: %v", err)
		}
		writeOutput(*out, msg)

	case "refresh":
		p1 := loadP1(pk, *sharePath)
		ch := dialDevice(*addr)
		defer ch.Close()
		if err := p1.RunRef(rand.Reader, ch); err != nil {
			log.Fatalf("refresh protocol: %v", err)
		}
		if err := p1.BeginPeriod(rand.Reader); err != nil {
			log.Fatalf("period rotation: %v", err)
		}
		raw, err := p1.Marshal()
		if err != nil {
			log.Fatalf("marshaling refreshed share: %v", err)
		}
		if err := os.WriteFile(*sharePath, raw, 0o600); err != nil {
			log.Fatalf("rewriting share file: %v", err)
		}
		fmt.Fprintln(os.Stderr, "shares refreshed on both devices")

	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dlrclient {encrypt|decrypt|refresh} [flags]")
	os.Exit(2)
}

func loadPK(path string) *dlr.PublicKey {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("reading public key: %v", err)
	}
	pk, err := dlr.UnmarshalPublicKey(raw)
	if err != nil {
		log.Fatalf("decoding public key: %v", err)
	}
	return pk
}

func loadP1(pk *dlr.PublicKey, path string) *dlr.P1 {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("reading share: %v", err)
	}
	p1, err := dlr.UnmarshalP1(pk, raw, nil)
	if err != nil {
		log.Fatalf("decoding share: %v", err)
	}
	return p1
}

func dialDevice(addr string) device.Channel {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatalf("connecting to device at %s: %v", addr, err)
	}
	return device.NewConnChannel(conn)
}

func readInput(path string) []byte {
	if path == "" {
		log.Fatal("missing -in")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("reading input: %v", err)
	}
	return data
}

func writeOutput(path string, data []byte) {
	if path == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("writing output: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", path, len(data))
}
