// Command dlrclient is the P1-side tool: it encrypts files with the
// public key, and decrypts or refreshes by driving the 2-party protocol
// against a running dlrdevice (P2).
//
//	dlrclient encrypt -pk keys/pk.bin -in secret.txt -out secret.dlr
//	dlrclient decrypt -pk keys/pk.bin -share keys/share1.bin \
//	    -addr 127.0.0.1:7700 -in secret.dlr
//	dlrclient refresh -pk keys/pk.bin -share keys/share1.bin \
//	    -addr 127.0.0.1:7700
//
// decrypt and refresh rewrite the P1 share file in place when the
// protocol changes it.
//
// With -server, decrypt and refresh go through a running dlrserver
// instead of driving the 2-party protocol directly: the request joins
// the server's batch window for the named tenant, and no share file is
// needed on this side (the server holds P1):
//
//	dlrclient decrypt -server 127.0.0.1:7800 -tenant default -in secret.dlr
//	dlrclient refresh -server 127.0.0.1:7800 -tenant default
//
// Only the KEM header of the ciphertext is sent to the server; the
// sealed payload is opened locally with the returned session element.
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"repro/internal/bn254"
	"repro/internal/device"
	"repro/internal/dlr"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		pkPath     = fs.String("pk", "pk.bin", "public key file")
		sharePath  = fs.String("share", "share1.bin", "P1 share file")
		addr       = fs.String("addr", "127.0.0.1:7700", "dlrdevice address")
		serverAddr = fs.String("server", "", "dlrserver address: decrypt/refresh through the batch-window server instead of driving P1 locally")
		tenant     = fs.String("tenant", "default", "tenant name for -server mode")
		in         = fs.String("in", "", "input file")
		out        = fs.String("out", "", "output file (default stdout)")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		log.Fatal(err)
	}

	switch cmd {
	case "encrypt":
		pk := loadPK(*pkPath)
		msg := readInput(*in)
		ct, err := dlr.EncryptBytes(rand.Reader, pk, msg, nil)
		if err != nil {
			log.Fatalf("encrypt: %v", err)
		}
		writeOutput(*out, ct.Bytes())

	case "decrypt":
		ct, err := dlr.HybridCiphertextFromBytes(readInput(*in))
		if err != nil {
			log.Fatalf("decoding ciphertext: %v", err)
		}
		session := runDec(*serverAddr, *tenant, *pkPath, *sharePath, *addr, ct)
		msg, err := dlr.DecryptBytes(ct, session)
		if err != nil {
			log.Fatalf("opening payload: %v", err)
		}
		writeOutput(*out, msg)

	case "refresh":
		if *serverAddr != "" {
			c := dialServer(*serverAddr)
			defer c.Close()
			epoch, err := c.Refresh(*tenant)
			if err != nil {
				log.Fatalf("server refresh: %v", err)
			}
			fmt.Fprintf(os.Stderr, "tenant %q refreshed (epoch %d)\n", *tenant, epoch)
			return
		}
		pk := loadPK(*pkPath)
		p1 := loadP1(pk, *sharePath)
		ch := dialDevice(*addr)
		defer ch.Close()
		if err := p1.RunRef(rand.Reader, ch); err != nil {
			log.Fatalf("refresh protocol: %v", err)
		}
		if err := p1.BeginPeriod(rand.Reader); err != nil {
			log.Fatalf("period rotation: %v", err)
		}
		raw, err := p1.Marshal()
		if err != nil {
			log.Fatalf("marshaling refreshed share: %v", err)
		}
		if err := os.WriteFile(*sharePath, raw, 0o600); err != nil {
			log.Fatalf("rewriting share file: %v", err)
		}
		fmt.Fprintln(os.Stderr, "shares refreshed on both devices")

	default:
		usage()
	}
}

// runDec recovers the session element for a hybrid ciphertext, either
// through a dlrserver batch window (-server) or by driving the 2-party
// protocol directly against a dlrdevice. Only the KEM header leaves
// this process in either mode.
func runDec(serverAddr, tenant, pkPath, sharePath, addr string, ct *dlr.HybridCiphertext) *bn254.GT {
	if serverAddr != "" {
		c := dialServer(serverAddr)
		defer c.Close()
		session, err := c.Decrypt(tenant, ct.KEM)
		if err != nil {
			log.Fatalf("server decryption: %v", err)
		}
		return session
	}
	pk := loadPK(pkPath)
	p1 := loadP1(pk, sharePath)
	ch := dialDevice(addr)
	defer ch.Close()
	session, err := p1.RunDec(rand.Reader, ch, ct.KEM)
	if err != nil {
		log.Fatalf("distributed decryption: %v", err)
	}
	return session
}

func dialServer(addr string) *server.Client {
	c, err := server.Dial(addr)
	if err != nil {
		log.Fatalf("connecting to server at %s: %v", addr, err)
	}
	return c
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dlrclient {encrypt|decrypt|refresh} [flags]")
	os.Exit(2)
}

func loadPK(path string) *dlr.PublicKey {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("reading public key: %v", err)
	}
	pk, err := dlr.UnmarshalPublicKey(raw)
	if err != nil {
		log.Fatalf("decoding public key: %v", err)
	}
	return pk
}

func loadP1(pk *dlr.PublicKey, path string) *dlr.P1 {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("reading share: %v", err)
	}
	p1, err := dlr.UnmarshalP1(pk, raw, nil)
	if err != nil {
		log.Fatalf("decoding share: %v", err)
	}
	return p1
}

func dialDevice(addr string) device.Channel {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatalf("connecting to device at %s: %v", addr, err)
	}
	return device.NewConnChannel(conn)
}

func readInput(path string) []byte {
	if path == "" {
		log.Fatal("missing -in")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("reading input: %v", err)
	}
	return data
}

func writeOutput(path string, data []byte) {
	if path == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("writing output: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", path, len(data))
}
