// Command dlrattack generates the data for experiment E5: the
// key-recovery adversary of the continual-memory-leakage game, run
// against (a) a deployment that never refreshes its shares and (b) the
// actual scheme. It reports, per leakage-chunk width, the number of
// periods the attack needs and whether msk was recovered.
//
//	dlrattack -games 3 -mode optimal
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/leakage"
	"repro/internal/params"
)

func main() {
	log.SetFlags(0)
	var (
		games = flag.Int("games", 1, "games per configuration")
		mode  = flag.String("mode", "optimal", "P1 memory layout: basic | optimal")
		n     = flag.Int("n", 40, "statistical security parameter")
	)
	flag.Parse()

	var m params.Mode
	switch *mode {
	case "basic":
		m = params.ModeBasic
	case "optimal":
		m = params.ModeOptimalRate
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	fmt.Println("E5 — continual leakage vs refresh (key-recovery adversary)")
	fmt.Println("the adversary leaks P2's full share once, then λ-bit msk chunks from P1 per period")
	fmt.Println()
	fmt.Printf("%-8s %-8s %-10s %-9s %-10s %-9s\n", "λ(bits)", "refresh", "periods", "msk", "wins", "games")

	for _, lambda := range []int{256, 512, 1024} {
		prm := params.MustNew(*n, lambda)
		for _, refresh := range []bool{false, true} {
			wins, recovered, periods := 0, 0, 0
			for g := 0; g < *games; g++ {
				adv, err := leakage.NewKeyRecoveryAdversary(nil, prm, m, 0)
				if err != nil {
					log.Fatal(err)
				}
				cfg := leakage.Config{
					Params:            prm,
					Mode:              m,
					RefreshEnabled:    refresh,
					SkipBackgroundDec: true,
					MaxPeriods:        64,
				}
				res, err := leakage.RunCPAGame(nil, cfg, adv)
				if err != nil {
					log.Fatalf("game: %v", err)
				}
				if res.Win {
					wins++
				}
				if adv.MatchedChallenge {
					recovered++
				}
				periods = res.Periods
			}
			fmt.Printf("%-8d %-8v %-10d %d/%-7d %d/%-8d %d\n",
				lambda, refresh, periods, recovered, *games, wins, *games, *games)
		}
	}
	fmt.Println()
	fmt.Println("expected shape: refresh=false → msk recovered, wins = games;")
	fmt.Println("               refresh=true  → msk never recovered, wins ≈ games/2.")
}
