// Command dlrlint runs the repo's static-analysis suite (internal/lint)
// over the module: vartime-taint, into-aliasing, hot-path-alloc,
// unchecked-serialization, atomic-discipline, lock-discipline,
// zeroize-paths and payload-ownership. It is standard-library only —
// package discovery shells out to `go list`, type information comes
// from build-cache export data — and is wired into `make lint` /
// `make ci`.
//
// Usage:
//
//	dlrlint [-list] [-json] [packages|testdata-dirs]
//
// Arguments are go-list package patterns (default ./...); bare
// directory arguments (testdata golden packages) are loaded directly.
// -json emits one JSON object per finding ({analyzer, file, line,
// column, message}), one per line, for CI archival; the human format
// stays the default. Exits 1 when any finding survives its
// //dlrlint:ignore filters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

// jsonFinding is the machine-readable shape of one diagnostic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as one JSON object per line")
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-24s %s\n", a.Name, a.Doc)
		}
		return
	}
	diags, err := lint.Main(".", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlrlint:", err)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(jsonFinding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "dlrlint:", err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dlrlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
