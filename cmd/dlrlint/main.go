// Command dlrlint runs the repo's static-analysis suite (internal/lint)
// over the module: vartime-taint, into-aliasing, hot-path-alloc and
// unchecked-serialization. It is standard-library only — package
// discovery shells out to `go list`, type information comes from
// build-cache export data — and is wired into `make lint` / `make ci`.
//
// Usage:
//
//	dlrlint [-list] [packages|testdata-dirs]
//
// Arguments are go-list package patterns (default ./...); bare
// directory arguments (testdata golden packages) are loaded directly.
// Exits 1 when any finding survives its //dlrlint:ignore filters.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-24s %s\n", a.Name, a.Doc)
		}
		return
	}
	diags, err := lint.Main(".", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlrlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dlrlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
