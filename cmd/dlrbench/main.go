// Command dlrbench runs the experiment suite E1–E11 (DESIGN.md §2) and
// prints the paper-claim-vs-measured tables recorded in EXPERIMENTS.md:
//
//	dlrbench                            # everything
//	dlrbench -e E5                      # one experiment
//	dlrbench -games 5                   # more attack games for E5
//	dlrbench -baseline bench_baseline.json  # snapshot fast-path timings
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	var (
		exp      = flag.String("e", "", "run a single experiment (E1..E11); empty = all")
		games    = flag.Int("games", 1, "games per configuration in E5")
		baseline = flag.String("baseline", "", "write a JSON snapshot of the E11 fast-path timings to this path (skips the table run)")
	)
	flag.Parse()

	if *baseline != "" {
		if err := writeBaseline(*baseline); err != nil {
			log.Fatal(err)
		}
		return
	}

	start := time.Now()
	tables, err := bench.Run(*exp, *games)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		fmt.Println(t.Format())
	}
	fmt.Printf("total: %d experiment(s) in %s\n", len(tables), time.Since(start).Round(time.Millisecond))
}

// writeBaseline snapshots the fast-path-vs-reference timings as JSON so
// future changes can be compared against a committed baseline
// (bench_baseline.json at the repository root).
func writeBaseline(path string) error {
	meas, err := bench.FastPathMeasurements()
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(meas, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d fast-path measurements to %s\n", len(meas), path)
	return nil
}
