// Command dlrbench runs the experiment suite E1–E18 (DESIGN.md §2) and
// prints the paper-claim-vs-measured tables recorded in EXPERIMENTS.md:
//
//	dlrbench                            # everything
//	dlrbench -e E5                      # one experiment
//	dlrbench -games 5                   # more attack games for E5
//	dlrbench -baseline bench_baseline.json  # snapshot fast-path timings
//	dlrbench -smoke bench_baseline.json     # fail if a hot op regressed >25%
//	dlrbench -pipeline -workers 1,2,4 -reqs 128 -batch 16
//	                                    # batched-decryption worker curve
//	dlrbench -pipeline -workers 2 -tenants 3 -cache 4
//	                                    # multi-tenant curve with a shared
//	                                    # rotation-aware table cache (hit
//	                                    # rates reported per point)
//	dlrbench -server -clients 1,8,32 -perclient 2
//	                                    # continuous-batching server curve:
//	                                    # N concurrent single-request TCP
//	                                    # clients, serial vs batch windows
//	dlrbench -rotate -cadences 100ms,30ms -clients 8 -perclient 4
//	                                    # rotation-under-load sweep: the
//	                                    # RefreshEvery scheduler rotates on
//	                                    # each cadence while closed-loop
//	                                    # clients decrypt, cold vs pipelined
//
// -cache N attaches an N-entry internal/cache LRU of batch pairing
// tables to every tenant's P1; 0 (the default) runs uncached. -tenants
// round-robins the request stream over that many independent DLR
// instances, which is what makes capacity pressure visible: size the
// cache below the tenant count and the hit rate collapses (see
// docs/PERFORMANCE.md for sizing guidance).
//
// -cpuprofile and -memprofile write pprof profiles of whichever mode
// runs, for digging into the hot loops the E13/E15 numbers summarize.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

// smokeTolerance is how much slower than the committed baseline a hot
// operation may run before -smoke fails. Generous because baselines are
// recorded on a different (usually quieter) machine than CI.
const smokeTolerance = 1.25

// smokeAllocSlack is the absolute allocs/op headroom on top of
// smokeTolerance before the allocation side of the gate fails. Counts
// are nearly deterministic, but parallel fan-out (par.ForEach) adds a
// few scheduling-dependent allocations per call.
const smokeAllocSlack = 16.0

// smokeAttempts bounds how many times -smoke re-measures before
// declaring a regression. Scheduler noise only ever inflates a timing,
// so the per-op minimum over a few passes is the honest number; a real
// regression stays slow on every pass.
const smokeAttempts = 3

func main() {
	log.SetFlags(0)
	var (
		exp        = flag.String("e", "", "run a single experiment (E1..E18); empty = all")
		games      = flag.Int("games", 1, "games per configuration in E5")
		baseline   = flag.String("baseline", "", "write a JSON snapshot of the fast-path timings to this path (skips the table run)")
		smoke      = flag.String("smoke", "", "compare current fast-path timings against this baseline JSON and exit non-zero on a >25% regression")
		pipeline   = flag.Bool("pipeline", false, "drive the batched decryption pipeline and report req/s with p50/p99 latency")
		workers    = flag.String("workers", "1,2,4", "comma-separated worker counts for -pipeline")
		reqs       = flag.Int("reqs", 128, "total decryption requests per -pipeline point")
		batchSize  = flag.Int("batch", 16, "requests per RunDecBatch call in -pipeline")
		tenants    = flag.Int("tenants", 1, "independent DLR instances the -pipeline request stream round-robins over")
		cacheCap   = flag.Int("cache", 0, "capacity of the shared rotation-aware table cache for -pipeline; 0 = uncached")
		srv        = flag.Bool("server", false, "drive the batch-window decrypt server with concurrent single-request TCP clients, serial vs windows")
		rotate     = flag.Bool("rotate", false, "drive the server under sustained load while the rotation scheduler refreshes on each -cadences entry, cold vs pipelined")
		cadences   = flag.String("cadences", "100ms,30ms", "comma-separated rotation cadences for -rotate")
		clients    = flag.String("clients", "1,8,32", "comma-separated concurrent-client counts for -server")
		perClient  = flag.Int("perclient", 2, "requests each -server client issues (closed-loop)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this path")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	if err := run(*exp, *games, *baseline, *smoke, *pipeline, *workers, *reqs, *batchSize, *tenants, *cacheCap, *srv, *rotate, *cadences, *clients, *perClient); err != nil {
		// log.Fatal would skip the profile-writing defers above.
		log.Print(err)
		os.Exit(1)
	}
}

func run(exp string, games int, baseline, smoke string, pipeline bool, workers string, reqs, batchSize, tenants, cacheCap int, srv, rotate bool, cadences, clients string, perClient int) error {
	switch {
	case baseline != "":
		return writeBaseline(baseline)
	case smoke != "":
		return runSmoke(smoke)
	case pipeline:
		return runPipeline(workers, reqs, batchSize, tenants, cacheCap)
	case srv:
		return runServer(clients, perClient)
	case rotate:
		return runRotate(cadences, clients, perClient)
	}

	start := time.Now()
	tables, err := bench.Run(exp, games)
	if err != nil {
		return err
	}
	for _, t := range tables {
		fmt.Println(t.Format())
	}
	fmt.Printf("total: %d experiment(s) in %s\n", len(tables), time.Since(start).Round(time.Millisecond))
	return nil
}

// runPipeline sweeps the batched decryption pipeline across the
// requested worker counts and prints the req/s-vs-workers curve. With
// -cache > 0 a shared table cache is attached and the per-point hit
// rate is appended to each row.
func runPipeline(workers string, reqs, batchSize, tenants, cacheCap int) error {
	fmt.Printf("batched decryption pipeline: %d requests per point, batch=%d, tenants=%d, cache=%d, GOMAXPROCS=%d\n",
		reqs, batchSize, tenants, cacheCap, runtime.GOMAXPROCS(0))
	fmt.Printf("%-8s  %10s  %12s  %12s  %12s  %10s  %6s  %10s\n",
		"workers", "req/s", "p50", "p99", "allocs/req", "KB/req", "GC", "pause")
	var base float64
	for _, field := range strings.Split(workers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			return fmt.Errorf("pipeline: bad -workers entry %q: %w", field, err)
		}
		pt, err := bench.DecPipelineCfg(bench.PipelineConfig{
			Workers: w, Requests: reqs, Batch: batchSize,
			Tenants: tenants, CacheCap: cacheCap,
		})
		if err != nil {
			return err
		}
		scale := ""
		if base == 0 {
			base = pt.ReqPerSec
		} else {
			scale = fmt.Sprintf("  (%.2fx vs 1 worker)", pt.ReqPerSec/base)
		}
		cacheCol := ""
		if cacheCap > 0 {
			cacheCol = fmt.Sprintf("  cache %3.0f%% hit (%d evictions)", 100*pt.CacheHitRate, pt.CacheEvictions)
		}
		fmt.Printf("%-8d  %10.1f  %12s  %12s  %12.0f  %10.1f  %6d  %10s%s%s\n",
			pt.Workers, pt.ReqPerSec, pt.P50.Round(time.Microsecond), pt.P99.Round(time.Microsecond),
			pt.AllocsPerReq, pt.BytesPerReq/1024, pt.GCCycles, pt.GCPause.Round(time.Microsecond), scale, cacheCol)
	}
	return nil
}

// runServer sweeps the batch-window decrypt server across the requested
// concurrent-client counts, printing the serial one-request-per-round-
// trip baseline next to the windowed path at each point.
func runServer(clients string, perClient int) error {
	fmt.Printf("batch-window decrypt server: %d request(s) per client, closed-loop over TCP\n", perClient)
	fmt.Printf("%-8s  %-7s  %10s  %14s  %12s  %12s  %12s\n",
		"clients", "mode", "req/s", "per-request", "mean window", "p50", "p99")
	for _, field := range strings.Split(clients, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			return fmt.Errorf("server: bad -clients entry %q: %w", field, err)
		}
		serial, err := bench.E16SerialBaseline(n, 1)
		if err != nil {
			return err
		}
		window, err := bench.E16WindowRun(n, perClient)
		if err != nil {
			return err
		}
		for _, pt := range []*bench.ServerPoint{serial, window} {
			occ := "—"
			if pt.Mode == "window" {
				occ = fmt.Sprintf("%.1f", pt.MeanOccupancy)
			}
			fmt.Printf("%-8d  %-7s  %10.1f  %14s  %12s  %12s  %12s\n",
				pt.Clients, pt.Mode, pt.ReqPerSec, pt.PerReq.Round(time.Microsecond),
				occ, pt.P50.Round(time.Microsecond), pt.P99.Round(time.Microsecond))
		}
		fmt.Printf("%-8s  amortized improvement: %.1fx\n", "",
			float64(serial.PerReq)/float64(window.PerReq))
	}
	return nil
}

// runRotate sweeps rotation-under-load: for each cadence the server's
// RefreshEvery scheduler rotates the tenant while closed-loop clients
// decrypt, once through the cold rotation path and once pipelined. The
// steady (no-rotation) reference prints first.
func runRotate(cadences, clients string, perClient int) error {
	n := 8
	if fields := strings.Split(clients, ","); len(fields) > 0 {
		v, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return fmt.Errorf("rotate: bad -clients entry %q: %w", fields[0], err)
		}
		n = v
	}
	fmt.Printf("rotation under load: %d clients x %d requests, closed-loop over TCP\n", n, perClient)
	fmt.Printf("%-12s  %-10s  %10s  %12s  %12s  %10s  %12s\n",
		"cadence", "mode", "req/s", "p50", "p99", "rotations", "mean stall")
	steady, err := bench.E17ServerRun(0, false, n, perClient)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s  %-10s  %10.1f  %12s  %12s  %10s  %12s\n",
		"none", "steady", steady.ReqPerSec,
		steady.P50.Round(time.Microsecond), steady.P99.Round(time.Microsecond), "—", "—")
	for _, field := range strings.Split(cadences, ",") {
		cadence, err := time.ParseDuration(strings.TrimSpace(field))
		if err != nil {
			return fmt.Errorf("rotate: bad -cadences entry %q: %w", field, err)
		}
		for _, cold := range []bool{true, false} {
			pt, err := bench.E17ServerRun(cadence, cold, n, perClient)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s  %-10s  %10.1f  %12s  %12s  %10d  %12s\n",
				cadence, pt.Mode, pt.ReqPerSec,
				pt.P50.Round(time.Microsecond), pt.P99.Round(time.Microsecond),
				pt.Rotations, pt.StallMean.Round(time.Microsecond))
		}
	}
	return nil
}

// allMeasurements gathers every fast-path timing pair: the E11 set
// (wNAF vs reference ladder, multi-pairing, transport), the E12 set
// (GLV/GLS vs wNAF, pairing tables vs cold Miller loops), the E13
// set (Pippenger vs Straus, lazy tower vs reducing twins, batched vs
// per-request decryption), the E15 set (chunk-parallel primitives
// vs their serial paths, cached vs cold batch tables) and the E16
// server row (serial vs batch-window amortized per-request cost at 32
// concurrent clients) and the E17 rotation rows (cold vs prewarmed
// first-post-rotation batch, full cold rotation vs commit-only stall).
func allMeasurements() ([]bench.FastPathMeasurement, error) {
	meas, err := bench.FastPathMeasurements()
	if err != nil {
		return nil, err
	}
	endo, err := bench.EndoMeasurements()
	if err != nil {
		return nil, err
	}
	thr, err := bench.E13Measurements()
	if err != nil {
		return nil, err
	}
	par, err := bench.E15Measurements()
	if err != nil {
		return nil, err
	}
	srv, err := bench.E16Measurements()
	if err != nil {
		return nil, err
	}
	rot, err := bench.E17Measurements()
	if err != nil {
		return nil, err
	}
	wirefl, err := bench.E18Measurements()
	if err != nil {
		return nil, err
	}
	out := append(append(append(meas, endo...), thr...), par...)
	return append(append(append(out, srv...), rot...), wirefl...), nil
}

// writeBaseline snapshots the fast-path-vs-reference timings as JSON so
// future changes can be compared against a committed baseline
// (bench_baseline.json at the repository root).
func writeBaseline(path string) error {
	meas, err := allMeasurements()
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(meas, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d fast-path measurements to %s\n", len(meas), path)
	return nil
}

// allocRegressed reports whether the measured allocs/op regressed
// against the baseline beyond tolerance. A zero baseline value means
// the baseline predates allocation tracking — skip the check.
func allocRegressed(cur, base bench.FastPathMeasurement) bool {
	if base.FastAllocsPerOp <= 0 {
		return false
	}
	return cur.FastAllocsPerOp > base.FastAllocsPerOp*smokeTolerance+smokeAllocSlack
}

// smokeBytesSlack is the absolute bytes/op headroom on top of
// smokeTolerance for the heap-traffic side of the gate — one small
// object's worth, so ops whose baseline is a few hundred bytes (a
// single returned element) don't trip on size-class rounding.
const smokeBytesSlack = 512.0

// bytesRegressed is allocRegressed for heap bytes per op: it catches a
// path that keeps its allocation count but starts allocating much
// bigger objects (e.g. a scratch buffer sized per call instead of
// pooled). Baselines predating byte tracking record zero — skipped.
func bytesRegressed(cur, base bench.FastPathMeasurement) bool {
	if base.FastBytesPerOp <= 0 {
		return false
	}
	return cur.FastBytesPerOp > base.FastBytesPerOp*smokeTolerance+smokeBytesSlack
}

// runSmoke re-times every hot operation and fails if any fast path runs
// more than smokeTolerance× slower — or allocates more objects than
// smokeTolerance× + smokeAllocSlack, or more bytes than
// smokeTolerance× + smokeBytesSlack, per op — than the committed
// baseline. When an op looks regressed, the whole suite is re-measured
// (up to smokeAttempts passes) and the per-op minimum is kept, so
// one-off scheduler stalls on a busy box do not fail the gate. Ops
// present on only one side are reported but do not fail the run (the
// baseline may predate a newly added op, or an op may have been
// retired).
func runSmoke(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("smoke: reading baseline: %w", err)
	}
	var base []bench.FastPathMeasurement
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("smoke: parsing baseline: %w", err)
	}
	baseByOp := make(map[string]bench.FastPathMeasurement, len(base))
	for _, m := range base {
		baseByOp[m.Op] = m
	}

	cur, err := allMeasurements()
	if err != nil {
		return err
	}
	over := func() bool {
		for _, m := range cur {
			if b, ok := baseByOp[m.Op]; ok &&
				(m.FastNsPerOp > b.FastNsPerOp*smokeTolerance || allocRegressed(m, b) || bytesRegressed(m, b)) {
				return true
			}
		}
		return false
	}
	for attempt := 1; attempt < smokeAttempts && over(); attempt++ {
		fmt.Printf("  (possible regression — re-measuring, pass %d/%d)\n", attempt+1, smokeAttempts)
		again, err := allMeasurements()
		if err != nil {
			return err
		}
		byOp := make(map[string]bench.FastPathMeasurement, len(again))
		for _, m := range again {
			byOp[m.Op] = m
		}
		for i, m := range cur {
			a, ok := byOp[m.Op]
			if !ok {
				continue
			}
			if a.FastNsPerOp < m.FastNsPerOp {
				cur[i].FastNsPerOp = a.FastNsPerOp
			}
			if a.FastAllocsPerOp < m.FastAllocsPerOp {
				cur[i].FastAllocsPerOp = a.FastAllocsPerOp
			}
			if a.FastBytesPerOp < m.FastBytesPerOp {
				cur[i].FastBytesPerOp = a.FastBytesPerOp
			}
		}
	}
	var failed int
	for _, m := range cur {
		b, ok := baseByOp[m.Op]
		if !ok {
			fmt.Printf("  new   %-44s %10.0f ns/op (not in baseline)\n", m.Op, m.FastNsPerOp)
			continue
		}
		delete(baseByOp, m.Op)
		ratio := m.FastNsPerOp / b.FastNsPerOp
		status := "ok    "
		if ratio > smokeTolerance {
			status = "REGR  "
			failed++
		} else if allocRegressed(m, b) {
			status = "ALLOC "
			failed++
		} else if bytesRegressed(m, b) {
			status = "BYTES "
			failed++
		}
		fmt.Printf("  %s%-44s %10.0f ns/op vs baseline %10.0f (%.2fx), %.0f allocs/op vs %.0f, %.0f B/op vs %.0f\n",
			status, m.Op, m.FastNsPerOp, b.FastNsPerOp, ratio, m.FastAllocsPerOp, b.FastAllocsPerOp, m.FastBytesPerOp, b.FastBytesPerOp)
	}
	for op := range baseByOp {
		fmt.Printf("  gone  %-44s (in baseline but no longer measured)\n", op)
	}
	if failed > 0 {
		return fmt.Errorf("smoke: %d hot operation(s) regressed more than %.0f%% vs %s",
			failed, (smokeTolerance-1)*100, path)
	}
	fmt.Printf("smoke: all %d hot operations within %.0f%% of baseline\n",
		len(cur), (smokeTolerance-1)*100)
	return nil
}
