// Command dlrbench runs the experiment suite E1–E10 (DESIGN.md §2) and
// prints the paper-claim-vs-measured tables recorded in EXPERIMENTS.md:
//
//	dlrbench              # everything
//	dlrbench -e E5        # one experiment
//	dlrbench -games 5     # more attack games for E5
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	var (
		exp   = flag.String("e", "", "run a single experiment (E1..E10); empty = all")
		games = flag.Int("games", 1, "games per configuration in E5")
	)
	flag.Parse()

	start := time.Now()
	tables, err := bench.Run(*exp, *games)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		fmt.Println(t.Format())
	}
	fmt.Printf("total: %d experiment(s) in %s\n", len(tables), time.Since(start).Round(time.Millisecond))
}
