// Command dlrbench runs the experiment suite E1–E12 (DESIGN.md §2) and
// prints the paper-claim-vs-measured tables recorded in EXPERIMENTS.md:
//
//	dlrbench                            # everything
//	dlrbench -e E5                      # one experiment
//	dlrbench -games 5                   # more attack games for E5
//	dlrbench -baseline bench_baseline.json  # snapshot fast-path timings
//	dlrbench -smoke bench_baseline.json     # fail if a hot op regressed >25%
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
)

// smokeTolerance is how much slower than the committed baseline a hot
// operation may run before -smoke fails. Generous because baselines are
// recorded on a different (usually quieter) machine than CI.
const smokeTolerance = 1.25

// smokeAttempts bounds how many times -smoke re-measures before
// declaring a regression. Scheduler noise only ever inflates a timing,
// so the per-op minimum over a few passes is the honest number; a real
// regression stays slow on every pass.
const smokeAttempts = 3

func main() {
	log.SetFlags(0)
	var (
		exp      = flag.String("e", "", "run a single experiment (E1..E12); empty = all")
		games    = flag.Int("games", 1, "games per configuration in E5")
		baseline = flag.String("baseline", "", "write a JSON snapshot of the E11+E12 fast-path timings to this path (skips the table run)")
		smoke    = flag.String("smoke", "", "compare current fast-path timings against this baseline JSON and exit non-zero on a >25% regression")
	)
	flag.Parse()

	if *baseline != "" {
		if err := writeBaseline(*baseline); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *smoke != "" {
		if err := runSmoke(*smoke); err != nil {
			log.Fatal(err)
		}
		return
	}

	start := time.Now()
	tables, err := bench.Run(*exp, *games)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		fmt.Println(t.Format())
	}
	fmt.Printf("total: %d experiment(s) in %s\n", len(tables), time.Since(start).Round(time.Millisecond))
}

// allMeasurements gathers every fast-path timing pair: the E11 set
// (wNAF vs reference ladder, multi-pairing, transport) and the E12 set
// (GLV/GLS vs wNAF, pairing tables vs cold Miller loops).
func allMeasurements() ([]bench.FastPathMeasurement, error) {
	meas, err := bench.FastPathMeasurements()
	if err != nil {
		return nil, err
	}
	endo, err := bench.EndoMeasurements()
	if err != nil {
		return nil, err
	}
	return append(meas, endo...), nil
}

// writeBaseline snapshots the fast-path-vs-reference timings as JSON so
// future changes can be compared against a committed baseline
// (bench_baseline.json at the repository root).
func writeBaseline(path string) error {
	meas, err := allMeasurements()
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(meas, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d fast-path measurements to %s\n", len(meas), path)
	return nil
}

// runSmoke re-times every hot operation and fails if any fast path runs
// more than smokeTolerance× slower than the committed baseline. When an
// op looks regressed, the whole suite is re-measured (up to
// smokeAttempts passes) and the per-op minimum is kept, so one-off
// scheduler stalls on a busy box do not fail the gate. Ops present on
// only one side are reported but do not fail the run (the baseline may
// predate a newly added op, or an op may have been retired).
func runSmoke(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("smoke: reading baseline: %w", err)
	}
	var base []bench.FastPathMeasurement
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("smoke: parsing baseline: %w", err)
	}
	baseByOp := make(map[string]bench.FastPathMeasurement, len(base))
	for _, m := range base {
		baseByOp[m.Op] = m
	}

	cur, err := allMeasurements()
	if err != nil {
		return err
	}
	over := func() bool {
		for _, m := range cur {
			if b, ok := baseByOp[m.Op]; ok && m.FastNsPerOp > b.FastNsPerOp*smokeTolerance {
				return true
			}
		}
		return false
	}
	for attempt := 1; attempt < smokeAttempts && over(); attempt++ {
		fmt.Printf("  (possible regression — re-measuring, pass %d/%d)\n", attempt+1, smokeAttempts)
		again, err := allMeasurements()
		if err != nil {
			return err
		}
		byOp := make(map[string]bench.FastPathMeasurement, len(again))
		for _, m := range again {
			byOp[m.Op] = m
		}
		for i, m := range cur {
			if a, ok := byOp[m.Op]; ok && a.FastNsPerOp < m.FastNsPerOp {
				cur[i] = a
			}
		}
	}
	var failed int
	for _, m := range cur {
		b, ok := baseByOp[m.Op]
		if !ok {
			fmt.Printf("  new   %-34s %10.0f ns/op (not in baseline)\n", m.Op, m.FastNsPerOp)
			continue
		}
		delete(baseByOp, m.Op)
		ratio := m.FastNsPerOp / b.FastNsPerOp
		status := "ok    "
		if ratio > smokeTolerance {
			status = "REGR  "
			failed++
		}
		fmt.Printf("  %s%-34s %10.0f ns/op vs baseline %10.0f (%.2fx)\n",
			status, m.Op, m.FastNsPerOp, b.FastNsPerOp, ratio)
	}
	for op := range baseByOp {
		fmt.Printf("  gone  %-34s (in baseline but no longer measured)\n", op)
	}
	if failed > 0 {
		return fmt.Errorf("smoke: %d hot operation(s) regressed more than %.0f%% vs %s",
			failed, (smokeTolerance-1)*100, path)
	}
	fmt.Printf("smoke: all %d hot operations within %.0f%% of baseline\n",
		len(cur), (smokeTolerance-1)*100)
	return nil
}
