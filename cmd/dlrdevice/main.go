// Command dlrdevice runs device P2 (the auxiliary device of §1.1) as a
// TCP daemon serving the 2-party decryption and refresh protocols:
//
//	dlrdevice -pk keys/pk.bin -share keys/share2.bin -listen 127.0.0.1:7700
//
// Connections are served concurrently, each on its own goroutine; a
// refresh from any peer is ordered against in-flight decryptions by
// P2's internal lock, and the share held by this process is rewritten
// in place when the protocol changes it. SIGINT/SIGTERM shut the
// daemon down gracefully: the listener closes, in-flight protocol
// rounds drain, and only then does the process exit.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"repro/internal/device"
	"repro/internal/dlr"
)

func main() {
	log.SetFlags(log.LstdFlags)
	var (
		pkPath    = flag.String("pk", "pk.bin", "public key file")
		sharePath = flag.String("share", "share2.bin", "P2 share file")
		listen    = flag.String("listen", "127.0.0.1:7700", "listen address")
		oneShot   = flag.Bool("oneshot", false, "exit after the first connection closes")
	)
	flag.Parse()

	pk, p2 := loadP2(*pkPath, *sharePath)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen %s: %v", *listen, err)
	}
	log.Printf("device P2 serving on %s (κ=%d, ℓ=%d)", ln.Addr(), pk.Params.Kappa, pk.Params.Ell)

	var (
		mu        sync.Mutex
		closing   bool
		conns     = make(map[net.Conn]struct{})
		drained   sync.WaitGroup
		firstDone = make(chan struct{}, 1)
	)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sigs
		log.Printf("%s: draining connections and shutting down", s)
		mu.Lock()
		closing = true
		mu.Unlock()
		// Closing the listener stops the accept loop; existing
		// connections keep draining until their current protocol round
		// finishes and the peer disconnects or errors out.
		_ = ln.Close()
		mu.Lock()
		for c := range conns {
			_ = c.Close()
		}
		mu.Unlock()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			mu.Lock()
			done := closing
			mu.Unlock()
			if done {
				break
			}
			log.Fatalf("accept: %v", err)
		}
		mu.Lock()
		conns[conn] = struct{}{}
		mu.Unlock()
		drained.Add(1)
		go func(conn net.Conn) {
			defer drained.Done()
			log.Printf("peer connected: %s", conn.RemoteAddr())
			ch := device.NewConnChannel(conn)
			if err := p2.ServeLoop(ch); err != nil {
				log.Printf("connection %s ended: %v", conn.RemoteAddr(), err)
			}
			_ = ch.Close()
			mu.Lock()
			delete(conns, conn)
			mu.Unlock()
			select {
			case firstDone <- struct{}{}:
			default:
			}
		}(conn)
		if *oneShot {
			<-firstDone
			break
		}
	}
	drained.Wait()
	log.Printf("device P2 stopped")
}

func loadP2(pkPath, sharePath string) (*dlr.PublicKey, *dlr.P2) {
	pkRaw, err := os.ReadFile(pkPath)
	if err != nil {
		log.Fatalf("reading public key: %v", err)
	}
	pk, err := dlr.UnmarshalPublicKey(pkRaw)
	if err != nil {
		log.Fatalf("decoding public key: %v", err)
	}
	shRaw, err := os.ReadFile(sharePath)
	if err != nil {
		log.Fatalf("reading share: %v", err)
	}
	p2, err := dlr.UnmarshalP2(pk, shRaw, nil)
	if err != nil {
		log.Fatalf("decoding share: %v", err)
	}
	return pk, p2
}
