// Command dlrdevice runs device P2 (the auxiliary device of §1.1) as a
// TCP daemon serving the 2-party decryption and refresh protocols:
//
//	dlrdevice -pk keys/pk.bin -share keys/share2.bin -listen 127.0.0.1:7700
//
// The share held by this process is refreshed in place whenever the peer
// runs the refresh protocol.
package main

import (
	"flag"
	"log"
	"net"
	"os"

	"repro/internal/device"
	"repro/internal/dlr"
)

func main() {
	log.SetFlags(log.LstdFlags)
	var (
		pkPath    = flag.String("pk", "pk.bin", "public key file")
		sharePath = flag.String("share", "share2.bin", "P2 share file")
		listen    = flag.String("listen", "127.0.0.1:7700", "listen address")
		oneShot   = flag.Bool("oneshot", false, "exit after the first connection closes")
	)
	flag.Parse()

	pk, p2 := loadP2(*pkPath, *sharePath)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen %s: %v", *listen, err)
	}
	log.Printf("device P2 serving on %s (κ=%d, ℓ=%d)", ln.Addr(), pk.Params.Kappa, pk.Params.Ell)

	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("accept: %v", err)
		}
		log.Printf("peer connected: %s", conn.RemoteAddr())
		ch := device.NewConnChannel(conn)
		if err := p2.ServeLoop(ch); err != nil {
			log.Printf("connection ended: %v", err)
		}
		_ = ch.Close()
		if *oneShot {
			return
		}
	}
}

func loadP2(pkPath, sharePath string) (*dlr.PublicKey, *dlr.P2) {
	pkRaw, err := os.ReadFile(pkPath)
	if err != nil {
		log.Fatalf("reading public key: %v", err)
	}
	pk, err := dlr.UnmarshalPublicKey(pkRaw)
	if err != nil {
		log.Fatalf("decoding public key: %v", err)
	}
	shRaw, err := os.ReadFile(sharePath)
	if err != nil {
		log.Fatalf("reading share: %v", err)
	}
	p2, err := dlr.UnmarshalP2(pk, shRaw, nil)
	if err != nil {
		log.Fatalf("decoding share: %v", err)
	}
	return pk, p2
}
