// Command dlrserver runs the multiplexed batch-window decrypt daemon
// (internal/server): many client sessions over one listener, all
// concurrent decrypt requests coalesced into per-tenant batch windows,
// each window drained through a single RunDecBatch round trip against
// the device.
//
//	dlrserver -pk keys/pk.bin -share keys/share1.bin \
//	    -device 127.0.0.1:7700 -listen 127.0.0.1:7800
//
// With -share2 instead of -device the P2 side runs in-process (useful
// for demos and benchmarks; it forfeits the two-device leakage model):
//
//	dlrserver -pk keys/pk.bin -share keys/share1.bin \
//	    -share2 keys/share2.bin -listen 127.0.0.1:7800
//
// -batch and -window tune the scheduler: a window closes as soon as
// -batch requests have coalesced, or -window after its first request —
// whichever comes first (see docs/PERFORMANCE.md, "Batch-window
// sizing"). -serial disables windowing and serves one request per
// round trip, the baseline the E16 experiment measures against.
// -refresh-every rotates every tenant's shares on that cadence through
// the pipelined zero-stall path (next-epoch tables prewarmed while
// serving continues; see docs/PERFORMANCE.md, "Rotation cadence
// sizing"); -cold-refresh reverts to the serialized rotation that
// stalls the tenant for the whole rebuild — the E17 comparison point.
// Serving metrics are published under expvar key "dlrserver"; set
// -debug to serve /debug/vars on a second listener. SIGINT/SIGTERM
// drain in-flight windows before exit — queued requests are answered,
// not dropped.
package main

import (
	"expvar"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/device"
	"repro/internal/dlr"
	"repro/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags)
	var (
		pkPath     = flag.String("pk", "pk.bin", "public key file")
		sharePath  = flag.String("share", "share1.bin", "P1 share file")
		share2Path = flag.String("share2", "", "P2 share file: run the device in-process instead of dialing -device")
		deviceAddr = flag.String("device", "", "address of a running dlrdevice (P2)")
		listen     = flag.String("listen", "127.0.0.1:7800", "listen address for client sessions")
		tenantName = flag.String("tenant", "default", "tenant name this share state serves")
		batch      = flag.Int("batch", 32, "requests per batch window")
		window     = flag.Duration("window", 2*time.Millisecond, "max wait for a window to fill")
		queue      = flag.Int("queue", 0, "request queue depth before busy rejections (0 = 4×batch)")
		cacheCap   = flag.Int("cache", 8, "rotation-aware pairing-table cache capacity (0 = uncached)")
		serial     = flag.Bool("serial", false, "serve one request per round trip (no windows) — the E16 baseline")
		refresh    = flag.Duration("refresh-every", 0, "rotate every tenant's shares on this cadence (0 = only on client request)")
		coldRef    = flag.Bool("cold-refresh", false, "use the serialized (non-pipelined) rotation path — the E17 baseline")
		debugAddr  = flag.String("debug", "", "serve /debug/vars (expvar metrics) on this address")
	)
	flag.Parse()

	pk := mustReadPK(*pkPath)
	p1 := mustReadP1(pk, *sharePath)

	s := server.New(server.Config{
		BatchSize:    *batch,
		Window:       *window,
		QueueDepth:   *queue,
		CacheCap:     *cacheCap,
		Serial:       *serial,
		RefreshEvery: *refresh,
		ColdRefresh:  *coldRef,
	})
	if *refresh > 0 {
		rotMode := "pipelined"
		if *coldRef {
			rotMode = "cold"
		}
		log.Printf("rotation scheduler: every %s (%s path)", *refresh, rotMode)
	}

	switch {
	case *share2Path != "":
		p2 := mustReadP2(pk, *share2Path)
		if err := s.RegisterLocal(*tenantName, p1, p2); err != nil {
			log.Fatalf("registering tenant: %v", err)
		}
		log.Printf("tenant %q: P2 running in-process (two-device leakage model forfeited)", *tenantName)
	case *deviceAddr != "":
		conn, err := net.Dial("tcp", *deviceAddr)
		if err != nil {
			log.Fatalf("connecting to device at %s: %v", *deviceAddr, err)
		}
		ch := device.NewConnChannel(conn)
		if err := s.RegisterTenant(*tenantName, p1, ch, ch.Close); err != nil {
			log.Fatalf("registering tenant: %v", err)
		}
		log.Printf("tenant %q: device at %s", *tenantName, *deviceAddr)
	default:
		log.Fatal("need -device addr or -share2 file for the P2 side")
	}

	if *debugAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/debug/vars", expvar.Handler())
			log.Printf("metrics on http://%s/debug/vars", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen %s: %v", *listen, err)
	}
	mode := "windows"
	if *serial {
		mode = "serial"
	}
	log.Printf("decrypt server on %s (κ=%d, ℓ=%d, mode=%s, batch=%d, window=%s)",
		ln.Addr(), pk.Params.Kappa, pk.Params.Ell, mode, *batch, *window)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	select {
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	case sig := <-sigs:
		log.Printf("%s: draining windows and shutting down", sig)
		// Shutdown drains every queued request through a final window
		// before returning; nothing accepted is dropped.
		s.Shutdown()
		if err := <-serveErr; err != nil {
			log.Printf("serve: %v", err)
		}
	}
	snap := s.Metrics().Snapshot()
	log.Printf("stopped: %d requests in %d windows (mean occupancy %.1f), %d rejected, %d refreshes",
		snap.Requests, snap.Windows, snap.MeanOccupancy, snap.Rejected, snap.Refreshes)
	if n := snap.RotationsPrewarmed + snap.RotationsCold; n > 0 {
		log.Printf("rotations: %d prewarmed, %d cold, mean serving stall %s (last %s)",
			snap.RotationsPrewarmed, snap.RotationsCold, snap.RotationStallMean, snap.RotationStallLast)
	}
}

func mustReadPK(path string) *dlr.PublicKey {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("reading public key: %v", err)
	}
	pk, err := dlr.UnmarshalPublicKey(raw)
	if err != nil {
		log.Fatalf("decoding public key: %v", err)
	}
	return pk
}

func mustReadP1(pk *dlr.PublicKey, path string) *dlr.P1 {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("reading P1 share: %v", err)
	}
	p1, err := dlr.UnmarshalP1(pk, raw, nil)
	if err != nil {
		log.Fatalf("decoding P1 share: %v", err)
	}
	return p1
}

func mustReadP2(pk *dlr.PublicKey, path string) *dlr.P2 {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("reading P2 share: %v", err)
	}
	p2, err := dlr.UnmarshalP2(pk, raw, nil)
	if err != nil {
		log.Fatalf("decoding P2 share: %v", err)
	}
	return p2
}
