// Command dlrkeygen runs DLR key generation (the trusted dealer) and
// writes the public key and the two device share files:
//
//	dlrkeygen -n 80 -lambda 256 -mode optimal -out ./keys
//
// produces keys/pk.bin, keys/share1.bin (device P1) and keys/share2.bin
// (device P2). Distribute the share files to their devices and delete
// the originals; they are the devices' secret memory.
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/dlr"
	"repro/internal/params"
)

func main() {
	log.SetFlags(0)
	var (
		n      = flag.Int("n", 80, "statistical security parameter (bits)")
		lambda = flag.Int("lambda", 256, "per-period leakage bound for P1 (bits)")
		mode   = flag.String("mode", "optimal", "P1 memory layout: basic | optimal")
		out    = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	var m params.Mode
	switch *mode {
	case "basic":
		m = params.ModeBasic
	case "optimal":
		m = params.ModeOptimalRate
	default:
		log.Fatalf("unknown -mode %q (want basic or optimal)", *mode)
	}

	prm, err := params.New(*n, *lambda)
	if err != nil {
		log.Fatalf("invalid parameters: %v", err)
	}
	pk, p1, p2, err := dlr.Gen(rand.Reader, prm, dlr.WithMode(m))
	if err != nil {
		log.Fatalf("key generation: %v", err)
	}

	if err := os.MkdirAll(*out, 0o700); err != nil {
		log.Fatalf("creating output directory: %v", err)
	}
	write := func(name string, data []byte, perm os.FileMode) {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, data, perm); err != nil {
			log.Fatalf("writing %s: %v", path, err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}

	write("pk.bin", dlr.MarshalPublicKey(pk), 0o644)
	raw1, err := p1.Marshal()
	if err != nil {
		log.Fatalf("marshaling P1 share: %v", err)
	}
	write("share1.bin", raw1, 0o600)
	write("share2.bin", p2.Marshal(), 0o600)
	fmt.Printf("parameters: %v (mode %s)\n", prm, m)
}
