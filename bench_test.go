// Package repro_test holds the repository-level benchmark harness: one
// benchmark per experiment table of DESIGN.md §2 (regenerating the
// paper's quantitative claims; see EXPERIMENTS.md for recorded outputs)
// plus fine-grained benchmarks of every protocol operation.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/bench"
	"repro/internal/bn254"
	"repro/internal/cca2"
	"repro/internal/dibe"
	"repro/internal/dlr"
	"repro/internal/group"
	"repro/internal/hpske"
	"repro/internal/leakage"
	"repro/internal/params"
	"repro/internal/scalar"
	"repro/internal/storage"
)

// benchParams are the default benchmark parameters: statistical
// security 2⁻⁴⁰, λ = 256 leakage bits per period.
func benchParams(b *testing.B) params.Params {
	b.Helper()
	return params.MustNew(40, 256)
}

func runTable(b *testing.B, f func() (*bench.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty experiment table")
		}
	}
}

// BenchmarkE1_EfficiencyComparison regenerates the §1.2.1 footnote-3
// encryption-cost table.
func BenchmarkE1_EfficiencyComparison(b *testing.B) { runTable(b, bench.E1Efficiency) }

// BenchmarkE2_LeakageRates regenerates the Theorem 4.1 leakage-rate
// table.
func BenchmarkE2_LeakageRates(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.E2LeakageRates(), nil })
}

// BenchmarkE3_Sizes regenerates the key/communication-size table.
func BenchmarkE3_Sizes(b *testing.B) { runTable(b, bench.E3Sizes) }

// BenchmarkE4_Latency regenerates the protocol-latency table.
func BenchmarkE4_Latency(b *testing.B) { runTable(b, bench.E4Latency) }

// BenchmarkE5_AttackSim regenerates the refresh-vs-no-refresh attack
// table (one game per configuration).
func BenchmarkE5_AttackSim(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.E5Attack(1) })
}

// BenchmarkE6_DeviceAsymmetry regenerates the P2-simplicity op-count
// table.
func BenchmarkE6_DeviceAsymmetry(b *testing.B) { runTable(b, bench.E6DeviceAsymmetry) }

// BenchmarkE7_DIBE regenerates the DLRIBE operation table.
func BenchmarkE7_DIBE(b *testing.B) { runTable(b, bench.E7DIBE) }

// BenchmarkE8_CCA2Overhead regenerates the CHK-transform overhead table.
func BenchmarkE8_CCA2Overhead(b *testing.B) { runTable(b, bench.E8CCA2) }

// BenchmarkE9_Storage regenerates the secure-storage table.
func BenchmarkE9_Storage(b *testing.B) { runTable(b, bench.E9Storage) }

// BenchmarkE10_Ablations regenerates the design-choice ablation table.
func BenchmarkE10_Ablations(b *testing.B) { runTable(b, bench.E10Ablations) }

// BenchmarkE11_FastPath regenerates the fast-path-vs-reference speedup
// table (windowed scalar mult, multi-pairing, Straus multi-exp).
func BenchmarkE11_FastPath(b *testing.B) { runTable(b, bench.E11FastPath) }

// --- Fine-grained operation benchmarks -------------------------------

func BenchmarkDLR_Gen(b *testing.B) {
	prm := benchParams(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := dlr.Gen(rand.Reader, prm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDLR_Encrypt(b *testing.B) {
	pk, _, _, err := dlr.Gen(rand.Reader, benchParams(b))
	if err != nil {
		b.Fatal(err)
	}
	m, err := dlr.RandMessage(rand.Reader, pk)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dlr.Encrypt(rand.Reader, pk, m, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDLR_DecryptProtocol(b *testing.B) {
	pk, p1, p2, err := dlr.Gen(rand.Reader, benchParams(b))
	if err != nil {
		b.Fatal(err)
	}
	m, _ := dlr.RandMessage(rand.Reader, pk)
	ct, _ := dlr.Encrypt(rand.Reader, pk, m, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := dlr.Decrypt(rand.Reader, p1, p2, ct)
		if err != nil {
			b.Fatal(err)
		}
		if !got.Equal(m) {
			b.Fatal("wrong message")
		}
	}
}

func BenchmarkDLR_RefreshProtocol(b *testing.B) {
	_, p1, p2, err := dlr.Gen(rand.Reader, benchParams(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dlr.Refresh(rand.Reader, p1, p2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDLR_BeginPeriod(b *testing.B) {
	_, p1, _, err := dlr.Gen(rand.Reader, benchParams(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p1.BeginPeriod(rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDIBE_Extract(b *testing.B) {
	_, m1, m2, err := dibe.Gen(rand.Reader, benchParams(b), 16, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dibe.Extract(rand.Reader, m1, m2, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDIBE_DecryptProtocol(b *testing.B) {
	pk, m1, m2, err := dibe.Gen(rand.Reader, benchParams(b), 16, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	k1, k2, err := dibe.Extract(rand.Reader, m1, m2, "bench")
	if err != nil {
		b.Fatal(err)
	}
	m, _ := dibe.RandMessage(rand.Reader, pk)
	ct, _ := dibe.Encrypt(rand.Reader, pk, "bench", m, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dibe.Decrypt(rand.Reader, k1, k2, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCCA2_Encrypt(b *testing.B) {
	pk, _, _, err := cca2.Gen(rand.Reader, benchParams(b), 16, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	m, _ := cca2.RandMessage(rand.Reader, pk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cca2.Encrypt(rand.Reader, pk, m, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCCA2_DecryptProtocol(b *testing.B) {
	pk, m1, m2, err := cca2.Gen(rand.Reader, benchParams(b), 16, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	m, _ := cca2.RandMessage(rand.Reader, pk)
	ct, _ := cca2.Encrypt(rand.Reader, pk, m, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cca2.Decrypt(rand.Reader, pk, m1, m2, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorage_Get(b *testing.B) {
	st, err := storage.New(rand.Reader, benchParams(b))
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Put(rand.Reader, "k", []byte("value")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Get(rand.Reader, "k"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorage_RefreshPeriod(b *testing.B) {
	st, err := storage.New(rand.Reader, benchParams(b))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := st.Put(rand.Reader, string(rune('a'+i)), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.RefreshPeriod(rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fast-path vs reference micro-benchmarks -------------------------
//
// Each pair times a fast-path entry point against the retained naive
// *Reference implementation it is differentially tested against.

func benchScalar(b *testing.B) *big.Int {
	b.Helper()
	k, err := scalar.Rand(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	return k
}

func BenchmarkG1_ScalarBaseMult(b *testing.B) {
	k := benchScalar(b)
	new(bn254.G1).ScalarBaseMult(k) // build the fixed-base table outside the timing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(bn254.G1).ScalarBaseMult(k)
	}
}

func BenchmarkG1_ScalarBaseMultReference(b *testing.B) {
	k := benchScalar(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(bn254.G1).ScalarBaseMultReference(k)
	}
}

func BenchmarkG2_ScalarBaseMult(b *testing.B) {
	k := benchScalar(b)
	new(bn254.G2).ScalarBaseMult(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(bn254.G2).ScalarBaseMult(k)
	}
}

func BenchmarkG2_ScalarBaseMultReference(b *testing.B) {
	k := benchScalar(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(bn254.G2).ScalarBaseMultReference(k)
	}
}

func BenchmarkPair(b *testing.B) {
	p, _, err := bn254.RandG1(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	q, _, err := bn254.RandG2(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bn254.Pair(p, q)
	}
}

func BenchmarkPairReference(b *testing.B) {
	p, _, err := bn254.RandG1(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	q, _, err := bn254.RandG2(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bn254.PairReference(p, q)
	}
}

func benchTransportInputs(b *testing.B) (*bn254.G1, *hpske.Ciphertext[*bn254.G2]) {
	b.Helper()
	s, err := hpske.New[*bn254.G2](group.G2{}, 8)
	if err != nil {
		b.Fatal(err)
	}
	key, err := s.GenKey(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	m, err := s.G.Rand(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	ct, err := s.Encrypt(rand.Reader, key, m)
	if err != nil {
		b.Fatal(err)
	}
	a, _, err := bn254.RandG1(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	return a, ct
}

func BenchmarkHPSKE_Transport(b *testing.B) {
	a, ct := benchTransportInputs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hpske.Transport(nil, a, ct)
	}
}

func BenchmarkHPSKE_TransportReference(b *testing.B) {
	a, ct := benchTransportInputs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hpske.TransportReference(nil, a, ct)
	}
}

func BenchmarkLeakage_GamePeriod(b *testing.B) {
	// One full CPA-CML game period with the polite λ-bit leaker.
	prm := benchParams(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv := leakage.NewRandomGuessAdversary(nil)
		cfg := leakage.Config{
			Params:            prm,
			Mode:              params.ModeOptimalRate,
			RefreshEnabled:    true,
			SkipBackgroundDec: true,
		}
		if _, err := leakage.RunCPAGame(rand.Reader, cfg, adv); err != nil {
			b.Fatal(err)
		}
	}
}
