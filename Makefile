# Repro of "Distributed Public Key Schemes Secure against Continual
# Leakage" (PODC 2012). Pure Go, no external dependencies.

GO ?= go

.PHONY: all build test race race-par race-server race-rotation vet lint lint-self fmt-check bench bench-smoke fuzz-smoke ci baseline profile clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-par is the focused race pass over the packages that fan work
# out across goroutines (chunk-parallel primitives, the table cache,
# the batched-decryption pipeline). A subset of `race` — useful while
# iterating on parallel code without paying for the full suite.
race-par:
	$(GO) test -race -count=1 ./internal/par ./internal/ff ./internal/bn254 ./internal/cache ./internal/dlr

# race-server is the focused race pass over the serving stack: the
# batch-window server, the mux framing under it, the striped tenant
# store, and the dlr protocol layer it drains windows through
# (including the refresh-during-window race tests). A subset of `race`.
race-server:
	$(GO) test -race -count=1 ./internal/server ./internal/wire ./internal/storage ./internal/dlr

# race-rotation is the cached-path rotation race gate: the rotation
# storm and scheduler tests, the cold/pipelined epoch-invalidation
# tests, and the cache-warm batch tests, all with the epoch-keyed table
# cache attached (race-server's broader sweep spends most of its time
# on uncached protocol tests). Run while iterating on rotation code.
race-rotation:
	$(GO) test -race -count=1 -run 'TestRotation|TestServerRefresh|TestBatchCache' ./internal/server ./internal/dlr

vet:
	$(GO) vet ./...

# lint runs dlrlint, the repo's own static-analysis suite (see
# internal/lint): secret-taint tracking, ...Into aliasing contracts,
# //dlr:noalloc hot-path allocation checks, unchecked wire/storage
# decodes, and the concurrency & lifecycle pack — //dlr:atomic access
# discipline, //dlr:guarded-by / //dlr:lock-order lock discipline,
# //dlr:zeroize exit-path checks, and //dlr:borrowed payload ownership.
# Non-zero exit on any finding (stale ignore directives included).
lint:
	$(GO) run ./cmd/dlrlint ./...

# lint-self runs the analyzers over their own implementation and the
# CLI, so the linter's code is held to the contracts it enforces.
lint-self:
	$(GO) run ./cmd/dlrlint ./internal/lint ./cmd/dlrlint

# fmt-check fails if any tracked Go file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# ci is the tier-1 gate: build, vet, dlrlint (module then self-lint),
# gofmt cleanliness, the full test suite under the race detector (the
# protocol stack fans work out across goroutines), an uncached race
# pass over the serving stack (race-server), the cached-path rotation
# race gate (race-rotation), and a short differential fuzz pass over
# the lazy-tower and Pippenger twins. Lint runs before the race passes
# on purpose: static findings fail in seconds, the race suite takes
# minutes — fail fast on the cheap gate. Timing-sensitive bench
# regression checks are opt-in: CI_BENCH=1 make ci additionally fails
# if any hot operation regressed >25% against the committed
# bench_baseline.json.
ci: build vet lint lint-self fmt-check race race-server race-rotation fuzz-smoke
ifeq ($(CI_BENCH),1)
	$(MAKE) bench-smoke
endif

# fuzz-smoke gives each differential fuzz target a short budget on top
# of its committed seed corpus: enough to exercise the lazy-reduction
# and bucket-method paths against their twins on every CI run without
# turning CI into a fuzzing campaign. (`go test -fuzz` accepts a single
# target per invocation, hence one line per target.)
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzFp2Mul -fuzztime=$(FUZZTIME) ./internal/ff
	$(GO) test -run=^$$ -fuzz=FuzzFp6Mul -fuzztime=$(FUZZTIME) ./internal/ff
	$(GO) test -run=^$$ -fuzz=FuzzFpInverse -fuzztime=$(FUZZTIME) ./internal/ff
	$(GO) test -run=^$$ -fuzz=FuzzMultiExp -fuzztime=$(FUZZTIME) ./internal/bn254
	$(GO) test -run=^$$ -fuzz=FuzzPointCompressed -fuzztime=$(FUZZTIME) ./internal/bn254
	$(GO) test -run=^$$ -fuzz=FuzzGLVDecompose -fuzztime=$(FUZZTIME) ./internal/scalar
	$(GO) test -run=^$$ -fuzz=FuzzFrameRoundTrip -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzCiphertextFromBytes -fuzztime=$(FUZZTIME) ./internal/dlr

# bench-smoke re-times the fast-path operations and fails if any of them
# regressed more than 25% against the committed baseline snapshot.
bench-smoke:
	$(GO) run ./cmd/dlrbench -smoke bench_baseline.json

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# baseline re-snapshots the fast-path timings compared against in
# EXPERIMENTS.md. Run on a quiet machine and commit the result.
baseline:
	$(GO) run ./cmd/dlrbench -baseline bench_baseline.json

# profile captures CPU and heap profiles of the full experiment suite.
# Inspect with `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`
# (`top`, `list <func>`, `web`); the heap profile is taken after a
# final GC, so it shows retained memory, not transient churn — use the
# E14 table / bench-smoke bytes column for per-op traffic.
profile:
	$(GO) run ./cmd/dlrbench -cpuprofile cpu.pprof -memprofile mem.pprof

clean:
	$(GO) clean ./...
	rm -f cpu.pprof mem.pprof
