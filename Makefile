# Repro of "Distributed Public Key Schemes Secure against Continual
# Leakage" (PODC 2012). Pure Go, no external dependencies.

GO ?= go

.PHONY: all build test race vet bench bench-smoke ci baseline clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# ci is the tier-1 gate: build, vet, and the full test suite under the
# race detector (the protocol stack fans work out across goroutines).
# Timing-sensitive bench regression checks are opt-in: CI_BENCH=1 make ci
# additionally fails if any hot operation regressed >25% against the
# committed bench_baseline.json.
ci: build vet race
ifeq ($(CI_BENCH),1)
	$(MAKE) bench-smoke
endif

# bench-smoke re-times the fast-path operations and fails if any of them
# regressed more than 25% against the committed baseline snapshot.
bench-smoke:
	$(GO) run ./cmd/dlrbench -smoke bench_baseline.json

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# baseline re-snapshots the fast-path timings compared against in
# EXPERIMENTS.md. Run on a quiet machine and commit the result.
baseline:
	$(GO) run ./cmd/dlrbench -baseline bench_baseline.json

clean:
	$(GO) clean ./...
