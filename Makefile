# Repro of "Distributed Public Key Schemes Secure against Continual
# Leakage" (PODC 2012). Pure Go, no external dependencies.

GO ?= go

.PHONY: all build test race vet bench ci baseline clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# ci is the tier-1 gate: build, vet, and the full test suite under the
# race detector (the protocol stack fans work out across goroutines).
ci: build vet race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# baseline re-snapshots the fast-path timings compared against in
# EXPERIMENTS.md. Run on a quiet machine and commit the result.
baseline:
	$(GO) run ./cmd/dlrbench -baseline bench_baseline.json

clean:
	$(GO) clean ./...
